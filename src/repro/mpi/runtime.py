"""SPMD execution harness: one thread per MPI rank.

:func:`run_spmd` is the entry point every example, test and benchmark uses to
run an "MPI program": it spawns ``nprocs`` threads, hands each a
:class:`~repro.mpi.comm.Communicator` for the world communicator (plus any
extra positional/keyword arguments) and collects the per-rank return values.

Exceptions raised by any rank are collected and re-raised as a single
:class:`~repro.mpi.errors.SPMDExecutionError` after all other ranks have been
released (a rank stuck in a collective with a crashed peer would otherwise
deadlock, so the barrier is aborted on failure).
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence

from .clock import VirtualClock
from .comm import CommCostModel, Communicator, _CommGroup
from .errors import SPMDExecutionError

__all__ = ["SPMDResult", "run_spmd"]

#: How long ranks released by the barrier abort get to unwind before being
#: reported as timed out.
_TIMEOUT_GRACE_SECONDS = 1.0


@dataclass
class SPMDResult:
    """Results of an SPMD run.

    Attributes
    ----------
    returns:
        Per-rank return values of the rank function.
    clocks:
        Per-rank virtual clocks as they stood when the rank function
        returned; ``max(c.now for c in clocks)`` is the virtual makespan.
    """

    returns: List[Any]
    clocks: List[VirtualClock]

    @property
    def nprocs(self) -> int:
        """Number of ranks that ran."""
        return len(self.returns)

    @property
    def makespan(self) -> float:
        """Virtual time at which the slowest rank finished."""
        return max((c.now for c in self.clocks), default=0.0)


def run_spmd(
    fn: Callable[..., Any],
    nprocs: int,
    *args: Any,
    comm_cost: Optional[CommCostModel] = None,
    timeout: Optional[float] = 120.0,
    **kwargs: Any,
) -> SPMDResult:
    """Run ``fn(comm, *args, **kwargs)`` on ``nprocs`` concurrent ranks.

    Parameters
    ----------
    fn:
        The per-rank function.  Its first argument is the rank's world
        :class:`~repro.mpi.comm.Communicator`.
    nprocs:
        Number of ranks (threads) to run.
    comm_cost:
        Optional virtual-time cost model for communication operations.
    timeout:
        Wall-clock safety net in seconds for the whole group; ``None``
        disables it.  On expiry the group's barrier is aborted (releasing
        ranks stuck in a collective), the remaining threads are joined
        briefly so they can unwind, and every rank that had not finished at
        the deadline is reported by number in the raised
        :class:`SPMDExecutionError` — even if it completed during the grace
        period, since it exceeded the budget either way.

    Returns
    -------
    SPMDResult
        Per-rank return values and virtual clocks.

    Raises
    ------
    SPMDExecutionError
        If any rank raised; per-rank exceptions are attached.
    """
    if nprocs <= 0:
        raise ValueError("nprocs must be positive")

    group = _CommGroup(nprocs, cost_model=comm_cost)
    returns: List[Any] = [None] * nprocs
    failures: Dict[int, BaseException] = {}
    failure_lock = threading.Lock()

    def worker(rank: int) -> None:
        comm = Communicator(group, rank)
        try:
            returns[rank] = fn(comm, *args, **kwargs)
        except BaseException as exc:  # noqa: BLE001 - reported via SPMDExecutionError
            with failure_lock:
                failures[rank] = exc
            # Release peers blocked in a collective with this rank.
            group.barrier.abort()

    threads = [
        threading.Thread(target=worker, args=(rank,), name=f"mpi-rank-{rank}", daemon=True)
        for rank in range(nprocs)
    ]
    for t in threads:
        t.start()
    if timeout is None:
        for t in threads:
            t.join()
    else:
        # The timeout is a budget for the whole group, not per join: the
        # deadline is shared so a slow rank cannot extend the others' budget.
        deadline = time.monotonic() + timeout
        for t in threads:
            t.join(max(0.0, deadline - time.monotonic()))
        unfinished = [rank for rank, t in enumerate(threads) if t.is_alive()]
        if unfinished:
            # Abort the group so ranks stuck in a collective with a dead or
            # slow peer are released, give them a short grace period to
            # unwind (so their threads do not dangle), then report every
            # rank that had not finished at the deadline — by rank number,
            # not a generic sentinel.  The timeout entries also take
            # precedence over the BrokenBarrierError the abort provokes in
            # ranks that were blocked in a collective, so the root cause
            # (timeout) is not masked by its own cleanup.
            group.barrier.abort()
            grace_deadline = time.monotonic() + _TIMEOUT_GRACE_SECONDS
            for rank in unfinished:
                threads[rank].join(max(0.0, grace_deadline - time.monotonic()))
            timeouts = {
                rank: TimeoutError(
                    f"rank {rank} did not finish within the {timeout}s timeout"
                )
                for rank in unfinished
            }
            # Ranks that outlived the grace period may still be running and
            # mutating `failures`; snapshot it under the lock.
            with failure_lock:
                snapshot = dict(failures)
            raise SPMDExecutionError({**snapshot, **timeouts})

    if failures:
        raise SPMDExecutionError(failures)
    return SPMDResult(returns=returns, clocks=list(group.clocks))
