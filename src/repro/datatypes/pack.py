"""Packing and unpacking buffers described by datatypes.

``MPI_Pack``/``MPI_Unpack`` equivalents: gather the bytes selected by a
datatype out of a (possibly strided) memory buffer into a contiguous stream,
and scatter a contiguous stream back out.  The MPI-IO layer uses these when
the *memory* datatype of a request is non-contiguous (the paper's examples
use contiguous memory buffers, but the library supports both sides).
"""

from __future__ import annotations

from typing import Union

import numpy as np

from .datatype import Datatype, DatatypeError
from .flatten import flatten

__all__ = ["pack", "unpack", "packed_size"]

BufferLike = Union[bytes, bytearray, memoryview, np.ndarray]


def _as_memoryview(buffer: BufferLike) -> memoryview:
    """View any supported buffer as flat bytes."""
    if isinstance(buffer, np.ndarray):
        return memoryview(np.ascontiguousarray(buffer).view(np.uint8)).cast("B")
    return memoryview(buffer).cast("B")


def packed_size(datatype: Datatype, count: int = 1) -> int:
    """Number of bytes ``count`` elements of ``datatype`` pack into."""
    return datatype.size * count


def pack(buffer: BufferLike, datatype: Datatype, count: int = 1) -> bytes:
    """Gather ``count`` elements of ``datatype`` from ``buffer`` into a
    contiguous byte string (data-stream order)."""
    view = _as_memoryview(buffer)
    segments = flatten(datatype, count)
    total = packed_size(datatype, count)
    out = bytearray(total)
    pos = 0
    for offset, length in segments:
        if offset + length > len(view):
            raise DatatypeError(
                f"pack overruns buffer: need byte {offset + length}, "
                f"buffer has {len(view)}"
            )
        out[pos : pos + length] = view[offset : offset + length]
        pos += length
    return bytes(out)


def unpack(
    data: BufferLike, datatype: Datatype, buffer: Union[bytearray, np.ndarray], count: int = 1
) -> None:
    """Scatter a contiguous byte stream ``data`` into ``buffer`` according to
    ``count`` elements of ``datatype`` (inverse of :func:`pack`)."""
    src = _as_memoryview(data)
    if isinstance(buffer, np.ndarray):
        if not buffer.flags["C_CONTIGUOUS"]:
            raise DatatypeError("unpack target ndarray must be C-contiguous")
        dst = memoryview(buffer.view(np.uint8)).cast("B")
    else:
        dst = memoryview(buffer).cast("B")
    segments = flatten(datatype, count)
    needed = packed_size(datatype, count)
    if len(src) < needed:
        raise DatatypeError(f"unpack needs {needed} bytes, got {len(src)}")
    pos = 0
    for offset, length in segments:
        if offset + length > len(dst):
            raise DatatypeError(
                f"unpack overruns buffer: need byte {offset + length}, "
                f"buffer has {len(dst)}"
            )
        dst[offset : offset + length] = src[pos : pos + length]
        pos += length
