"""MPI derived-datatype engine.

Provides basic types, the :class:`~repro.datatypes.datatype.Datatype` object,
the full family of MPI type constructors (contiguous, vector, indexed,
struct, subarray, ...), flattening of datatypes into file segments, and
pack/unpack of memory buffers.
"""

from .typemap import BYTE, CHAR, DOUBLE, FLOAT, INT, LONG, SHORT, BasicType
from .datatype import Datatype, DatatypeError, from_basic
from .constructors import (
    ORDER_C,
    ORDER_FORTRAN,
    as_datatype,
    contiguous,
    hindexed,
    hvector,
    indexed,
    indexed_block,
    resized,
    struct,
    subarray,
    vector,
)
from .flatten import flatten, flatten_prefix, segments_for_bytes
from .pack import pack, packed_size, unpack

__all__ = [
    "BasicType",
    "BYTE",
    "CHAR",
    "SHORT",
    "INT",
    "LONG",
    "FLOAT",
    "DOUBLE",
    "Datatype",
    "DatatypeError",
    "from_basic",
    "as_datatype",
    "contiguous",
    "vector",
    "hvector",
    "indexed",
    "hindexed",
    "indexed_block",
    "struct",
    "subarray",
    "resized",
    "ORDER_C",
    "ORDER_FORTRAN",
    "flatten",
    "flatten_prefix",
    "segments_for_bytes",
    "pack",
    "unpack",
    "packed_size",
]
