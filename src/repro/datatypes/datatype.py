"""The :class:`Datatype` object — MPI derived datatypes as byte segments.

A :class:`Datatype` describes a (possibly non-contiguous) layout of bytes
relative to an origin address/offset.  It records:

* ``segments`` — the typemap, as an *ordered* tuple of ``(displacement,
  length)`` byte runs.  Order is significant: it is the data-stream order in
  which bytes are consumed from / produced into a contiguous buffer when the
  datatype is used for I/O or packing.
* ``size`` — the number of bytes of actual data (sum of segment lengths).
* ``lb`` / ``extent`` — the lower bound and extent, which control how
  successive elements of the type are laid out when a count > 1 is used.
  By default ``lb`` is the smallest displacement (0 for all of the paper's
  types) and ``extent`` spans to one past the largest displacement; the
  ``create_resized`` constructor can override both, mirroring
  ``MPI_Type_create_resized``.

Datatypes must be committed (:meth:`commit`) before being used in I/O calls,
mirroring ``MPI_Type_commit``; the constructors in
:mod:`repro.datatypes.constructors` return uncommitted types.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Sequence, Tuple

from .typemap import BasicType

__all__ = ["Datatype", "DatatypeError", "from_basic"]


class DatatypeError(Exception):
    """Raised on invalid datatype construction or use."""


def _merge_adjacent(segments: Iterable[Tuple[int, int]]) -> Tuple[Tuple[int, int], ...]:
    """Coalesce segments that are adjacent *in typemap order*.

    Only neighbouring entries whose byte ranges abut are merged; the overall
    order is preserved so the data-stream semantics do not change.
    """
    merged: List[Tuple[int, int]] = []
    for disp, length in segments:
        if length == 0:
            continue
        if merged and merged[-1][0] + merged[-1][1] == disp:
            merged[-1] = (merged[-1][0], merged[-1][1] + length)
        else:
            merged.append((disp, length))
    return tuple(merged)


@dataclass(frozen=True)
class Datatype:
    """An MPI (derived) datatype expressed as ordered byte segments."""

    segments: Tuple[Tuple[int, int], ...]
    lb: int
    extent: int
    name: str = "derived"
    committed: bool = field(default=False, compare=False)

    # -- construction ---------------------------------------------------------

    @staticmethod
    def build(
        segments: Sequence[Tuple[int, int]],
        lb: Optional[int] = None,
        extent: Optional[int] = None,
        name: str = "derived",
    ) -> "Datatype":
        """Create a datatype from raw ``(displacement, length)`` segments.

        ``lb``/``extent`` default to the natural bounds of the segments.
        """
        segs = _merge_adjacent((int(d), int(length)) for d, length in segments)
        for disp, length in segs:
            if length < 0:
                raise DatatypeError(f"negative segment length in {name}: {length}")
        if segs:
            natural_lb = min(d for d, _ in segs)
            natural_ub = max(d + ln for d, ln in segs)
        else:
            natural_lb, natural_ub = 0, 0
        final_lb = natural_lb if lb is None else int(lb)
        final_extent = (natural_ub - final_lb) if extent is None else int(extent)
        if final_extent < 0:
            raise DatatypeError(f"negative extent in {name}: {final_extent}")
        return Datatype(segments=segs, lb=final_lb, extent=final_extent, name=name)

    def commit(self) -> "Datatype":
        """Return a committed copy of the datatype (``MPI_Type_commit``)."""
        return Datatype(
            segments=self.segments,
            lb=self.lb,
            extent=self.extent,
            name=self.name,
            committed=True,
        )

    # -- properties ------------------------------------------------------------

    @property
    def size(self) -> int:
        """Number of data bytes the type describes (``MPI_Type_size``)."""
        return sum(length for _, length in self.segments)

    @property
    def ub(self) -> int:
        """Upper bound: ``lb + extent``."""
        return self.lb + self.extent

    @property
    def num_segments(self) -> int:
        """Number of contiguous byte runs in the typemap."""
        return len(self.segments)

    def is_contiguous(self) -> bool:
        """True when the type is one contiguous run with no holes and the
        extent equals the size (so repetition produces contiguous data)."""
        if not self.segments:
            return True
        return (
            len(self.segments) == 1
            and self.segments[0][0] == self.lb
            and self.extent == self.size
        )

    def require_committed(self) -> None:
        """Raise :class:`DatatypeError` unless the type has been committed."""
        if not self.committed:
            raise DatatypeError(
                f"datatype {self.name!r} used before MPI_Type_commit()"
            )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Datatype({self.name!r}, size={self.size}, extent={self.extent}, "
            f"segments={len(self.segments)})"
        )


def from_basic(basic: BasicType) -> Datatype:
    """Wrap a predefined basic type as a (committed) :class:`Datatype`."""
    dt = Datatype.build([(0, basic.size)], name=basic.name)
    return dt.commit()
