"""Flattening datatypes into absolute file segments.

ROMIO's internal "flattening" pass converts an (etype, filetype, displacement)
file view plus a request size into the list of contiguous ``(offset, length)``
file ranges the request will touch.  The same operation is needed here both
by the MPI-IO layer (:mod:`repro.io.fileview`) and, crucially, by the
atomicity strategies — the overlap matrix and the rank-ordering trims are
computed on flattened views.

Flattening a datatype with a repetition ``count`` places copy *i* of the
typemap at byte ``i * extent``, exactly as MPI does when a count or a file
view tiling is applied.
"""

from __future__ import annotations

from typing import List, Tuple

from .datatype import Datatype

__all__ = ["flatten", "flatten_prefix", "segments_for_bytes"]


def flatten(
    datatype: Datatype, count: int = 1, offset: int = 0
) -> List[Tuple[int, int]]:
    """Expand ``count`` copies of ``datatype`` starting at byte ``offset``.

    Returns ``(absolute_offset, length)`` pairs in data-stream order with
    adjacent runs coalesced.  ``offset`` is typically the file-view
    displacement.
    """
    if count < 0:
        raise ValueError("count must be non-negative")
    out: List[Tuple[int, int]] = []
    for i in range(count):
        base = offset + i * datatype.extent
        for disp, length in datatype.segments:
            if length == 0:
                continue
            pos = base + disp
            if out and out[-1][0] + out[-1][1] == pos:
                out[-1] = (out[-1][0], out[-1][1] + length)
            else:
                out.append((pos, length))
    return out


def flatten_prefix(
    datatype: Datatype, nbytes: int, offset: int = 0
) -> List[Tuple[int, int]]:
    """Flatten just enough copies of ``datatype`` to cover ``nbytes`` of data.

    This is what an I/O call needs: the file view's filetype tiles the file
    indefinitely, and a request of ``nbytes`` consumes the first ``nbytes``
    bytes of that (logically infinite) data stream.  The final segment is
    truncated so exactly ``nbytes`` data bytes are covered.

    Raises ``ValueError`` when the datatype has zero size but ``nbytes > 0``
    (the data stream could never be satisfied).
    """
    if nbytes < 0:
        raise ValueError("nbytes must be non-negative")
    if nbytes == 0:
        return []
    if datatype.size == 0:
        raise ValueError("cannot satisfy a non-empty request with a zero-size datatype")

    out: List[Tuple[int, int]] = []
    remaining = nbytes
    tile = 0
    while remaining > 0:
        base = offset + tile * datatype.extent
        for disp, length in datatype.segments:
            if remaining <= 0:
                break
            take = min(length, remaining)
            pos = base + disp
            if out and out[-1][0] + out[-1][1] == pos:
                out[-1] = (out[-1][0], out[-1][1] + take)
            else:
                out.append((pos, take))
            remaining -= take
        tile += 1
    return out


def segments_for_bytes(
    datatype: Datatype, nbytes: int, offset: int = 0, skip_bytes: int = 0
) -> List[Tuple[int, int]]:
    """Like :func:`flatten_prefix` but skipping ``skip_bytes`` of the data
    stream first (used to honour an individual file pointer position).

    ``skip_bytes`` is a position in the *data stream* (visible bytes), not a
    file offset.
    """
    if skip_bytes < 0:
        raise ValueError("skip_bytes must be non-negative")
    if nbytes == 0:
        return []
    if datatype.size == 0:
        raise ValueError("cannot satisfy a non-empty request with a zero-size datatype")

    full = flatten_prefix(datatype, skip_bytes + nbytes, offset)
    if skip_bytes == 0:
        return full
    out: List[Tuple[int, int]] = []
    to_skip = skip_bytes
    for pos, length in full:
        if to_skip >= length:
            to_skip -= length
            continue
        out.append((pos + to_skip, length - to_skip))
        to_skip = 0
    return out
