"""Basic MPI datatypes and typemap primitives.

An MPI derived datatype is, semantically, a *typemap*: an ordered sequence of
``(basic type, byte displacement)`` pairs.  Because this library only ever
moves raw bytes (the file system substrate stores bytes, and numpy buffers
are viewed as bytes), the typemap is represented as an ordered sequence of
*byte segments* ``(displacement, length)`` — one segment per maximal run of
contiguous basic-type bytes.  This preserves everything the MPI-IO layer
needs (sizes, extents, data-stream order, holes) while keeping flattening and
packing simple and fast.

The module defines the predefined basic datatypes used by the examples and
benchmarks (``BYTE``, ``CHAR``, ``INT``, ``FLOAT``, ``DOUBLE``, ...).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

__all__ = [
    "BasicType",
    "BYTE",
    "CHAR",
    "SHORT",
    "INT",
    "LONG",
    "FLOAT",
    "DOUBLE",
    "PREDEFINED",
    "basic_type_by_name",
]


@dataclass(frozen=True)
class BasicType:
    """A predefined MPI basic datatype.

    Attributes
    ----------
    name:
        MPI-style name (``"MPI_INT"`` etc.), used in reprs and error messages.
    size:
        Size in bytes of a single element.
    numpy_char:
        The numpy dtype character corresponding to the basic type, used when
        examples move numpy arrays through the MPI-IO layer.
    """

    name: str
    size: int
    numpy_char: str

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise ValueError(f"basic type size must be positive: {self!r}")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return self.name


BYTE = BasicType("MPI_BYTE", 1, "B")
CHAR = BasicType("MPI_CHAR", 1, "b")
SHORT = BasicType("MPI_SHORT", 2, "h")
INT = BasicType("MPI_INT", 4, "i")
LONG = BasicType("MPI_LONG", 8, "q")
FLOAT = BasicType("MPI_FLOAT", 4, "f")
DOUBLE = BasicType("MPI_DOUBLE", 8, "d")

PREDEFINED: Dict[str, BasicType] = {
    t.name: t for t in (BYTE, CHAR, SHORT, INT, LONG, FLOAT, DOUBLE)
}


def basic_type_by_name(name: str) -> BasicType:
    """Look up a predefined basic type by its MPI name."""
    try:
        return PREDEFINED[name]
    except KeyError:
        raise KeyError(
            f"unknown basic type {name!r}; known: {sorted(PREDEFINED)}"
        ) from None
