"""MPI derived-datatype constructors.

These mirror the MPI-2 type constructors the paper's workloads rely on —
most importantly ``MPI_Type_create_subarray`` which Figure 4 of the paper
uses to describe the column-wise partitioned file view — plus the rest of
the standard family so arbitrary non-contiguous file views can be expressed:

========================  =======================================
MPI call                  function here
========================  =======================================
MPI_Type_contiguous       :func:`contiguous`
MPI_Type_vector           :func:`vector`
MPI_Type_create_hvector   :func:`hvector`
MPI_Type_indexed          :func:`indexed`
MPI_Type_create_hindexed  :func:`hindexed`
MPI_Type_create_indexed_block :func:`indexed_block`
MPI_Type_create_struct    :func:`struct`
MPI_Type_create_subarray  :func:`subarray`
MPI_Type_create_darray    (not needed by the paper; see subarray)
MPI_Type_create_resized   :func:`resized`
========================  =======================================

Every constructor accepts either a :class:`~repro.datatypes.typemap.BasicType`
or an existing :class:`~repro.datatypes.datatype.Datatype` as the old type and
returns an *uncommitted* :class:`Datatype`.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple, Union

from .datatype import Datatype, DatatypeError, from_basic
from .typemap import BasicType

__all__ = [
    "ORDER_C",
    "ORDER_FORTRAN",
    "as_datatype",
    "contiguous",
    "vector",
    "hvector",
    "indexed",
    "hindexed",
    "indexed_block",
    "struct",
    "subarray",
    "resized",
]

ORDER_C = "C"
ORDER_FORTRAN = "F"

TypeLike = Union[BasicType, Datatype]


def as_datatype(oldtype: TypeLike) -> Datatype:
    """Coerce a basic type or datatype into a :class:`Datatype`."""
    if isinstance(oldtype, BasicType):
        return from_basic(oldtype)
    if isinstance(oldtype, Datatype):
        return oldtype
    raise DatatypeError(f"not a datatype: {oldtype!r}")


def _replicate(old: Datatype, count: int, stride_bytes: int) -> List[Tuple[int, int]]:
    """Repeat ``old``'s segments ``count`` times, ``stride_bytes`` apart."""
    segments: List[Tuple[int, int]] = []
    for i in range(count):
        base = i * stride_bytes
        for disp, length in old.segments:
            segments.append((base + disp, length))
    return segments


def contiguous(count: int, oldtype: TypeLike) -> Datatype:
    """``MPI_Type_contiguous``: ``count`` copies of ``oldtype`` back to back."""
    if count < 0:
        raise DatatypeError("count must be non-negative")
    old = as_datatype(oldtype)
    segments = _replicate(old, count, old.extent)
    return Datatype.build(
        segments,
        lb=old.lb if count else 0,
        extent=old.extent * count,
        name=f"contig({count}x{old.name})",
    )


def vector(count: int, blocklength: int, stride: int, oldtype: TypeLike) -> Datatype:
    """``MPI_Type_vector``: ``count`` blocks of ``blocklength`` elements,
    block starts ``stride`` *elements* apart."""
    if count < 0 or blocklength < 0:
        raise DatatypeError("count and blocklength must be non-negative")
    old = as_datatype(oldtype)
    return hvector(count, blocklength, stride * old.extent, old)


def hvector(count: int, blocklength: int, stride_bytes: int, oldtype: TypeLike) -> Datatype:
    """``MPI_Type_create_hvector``: like :func:`vector` with a byte stride."""
    if count < 0 or blocklength < 0:
        raise DatatypeError("count and blocklength must be non-negative")
    old = as_datatype(oldtype)
    block = contiguous(blocklength, old)
    segments: List[Tuple[int, int]] = []
    for i in range(count):
        base = i * stride_bytes
        for disp, length in block.segments:
            segments.append((base + disp, length))
    # MPI extent of a vector spans from the first to the last byte touched.
    return Datatype.build(segments, name=f"hvector({count},{blocklength},{stride_bytes})")


def indexed(
    blocklengths: Sequence[int], displacements: Sequence[int], oldtype: TypeLike
) -> Datatype:
    """``MPI_Type_indexed``: blocks of varying length at element displacements."""
    old = as_datatype(oldtype)
    byte_disps = [d * old.extent for d in displacements]
    return hindexed(blocklengths, byte_disps, old)


def hindexed(
    blocklengths: Sequence[int], displacements: Sequence[int], oldtype: TypeLike
) -> Datatype:
    """``MPI_Type_create_hindexed``: like :func:`indexed` with byte displacements."""
    if len(blocklengths) != len(displacements):
        raise DatatypeError("blocklengths and displacements must have equal length")
    old = as_datatype(oldtype)
    segments: List[Tuple[int, int]] = []
    for blocklen, disp in zip(blocklengths, displacements):
        if blocklen < 0:
            raise DatatypeError("block lengths must be non-negative")
        block = contiguous(blocklen, old)
        for bdisp, length in block.segments:
            segments.append((disp + bdisp, length))
    return Datatype.build(segments, name=f"hindexed({len(blocklengths)} blocks)")


def indexed_block(
    blocklength: int, displacements: Sequence[int], oldtype: TypeLike
) -> Datatype:
    """``MPI_Type_create_indexed_block``: equal-length blocks at element displacements."""
    return indexed([blocklength] * len(displacements), displacements, oldtype)


def struct(
    blocklengths: Sequence[int],
    displacements: Sequence[int],
    types: Sequence[TypeLike],
) -> Datatype:
    """``MPI_Type_create_struct``: heterogeneous blocks at byte displacements."""
    if not (len(blocklengths) == len(displacements) == len(types)):
        raise DatatypeError("struct arguments must have equal lengths")
    segments: List[Tuple[int, int]] = []
    for blocklen, disp, typ in zip(blocklengths, displacements, types):
        old = as_datatype(typ)
        block = contiguous(blocklen, old)
        for bdisp, length in block.segments:
            segments.append((disp + bdisp, length))
    return Datatype.build(segments, name=f"struct({len(types)} members)")


def subarray(
    sizes: Sequence[int],
    subsizes: Sequence[int],
    starts: Sequence[int],
    oldtype: TypeLike,
    order: str = ORDER_C,
) -> Datatype:
    """``MPI_Type_create_subarray``: an n-dimensional sub-block of a larger array.

    This is the constructor the paper's Figure 4 uses to build the
    column-wise partitioned file view: ``sizes`` is the global array shape,
    ``subsizes`` the local block shape and ``starts`` the block origin, all
    in elements of ``oldtype``.  The resulting type's extent equals the whole
    global array so it can be used directly as an MPI-IO filetype.

    ``order`` selects row-major (:data:`ORDER_C`, default) or column-major
    (:data:`ORDER_FORTRAN`) linearisation.
    """
    ndims = len(sizes)
    if not (len(subsizes) == len(starts) == ndims):
        raise DatatypeError("sizes, subsizes and starts must have the same length")
    if ndims == 0:
        raise DatatypeError("subarray needs at least one dimension")
    for dim, (size, subsize, start) in enumerate(zip(sizes, subsizes, starts)):
        if size <= 0:
            raise DatatypeError(f"sizes[{dim}] must be positive")
        if subsize < 0 or start < 0 or start + subsize > size:
            raise DatatypeError(
                f"invalid subarray in dimension {dim}: "
                f"size={size}, subsize={subsize}, start={start}"
            )
    old = as_datatype(oldtype)
    elem = old.extent

    if order == ORDER_C:
        dims = list(range(ndims))            # most significant first
    elif order == ORDER_FORTRAN:
        dims = list(reversed(range(ndims)))  # reverse: last axis most significant
    else:
        raise DatatypeError(f"order must be 'C' or 'F', got {order!r}")

    # Strides (in elements) of each dimension in the global linearisation.
    strides = [1] * ndims
    acc = 1
    for dim in reversed(dims):
        strides[dim] = acc
        acc *= sizes[dim]
    total_elements = acc

    # Enumerate the rows of the innermost dimension: every combination of the
    # outer dimensions yields one contiguous run of subsizes[inner] elements.
    inner = dims[-1]
    outer_dims = dims[:-1]

    segments: List[Tuple[int, int]] = []
    if all(subsizes[d] > 0 for d in range(ndims)):
        # One inner "row" is subsizes[inner] consecutive elements of oldtype;
        # tiling handles derived (non-contiguous) element types correctly.
        inner_row = contiguous(subsizes[inner], old)

        def recurse(dim_index: int, offset_elems: int) -> None:
            if dim_index == len(outer_dims):
                base = (offset_elems + starts[inner] * strides[inner]) * elem
                for disp, length in inner_row.segments:
                    segments.append((base + disp, length))
                return
            dim = outer_dims[dim_index]
            for i in range(subsizes[dim]):
                recurse(dim_index + 1, offset_elems + (starts[dim] + i) * strides[dim])

        recurse(0, 0)

    name = f"subarray(sizes={list(sizes)}, subsizes={list(subsizes)}, starts={list(starts)})"
    # Extent covers the full global array so repetition/filetype tiling works.
    return Datatype.build(segments, lb=0, extent=total_elements * elem, name=name)


def resized(oldtype: TypeLike, lb: int, extent: int) -> Datatype:
    """``MPI_Type_create_resized``: override the lower bound and extent."""
    old = as_datatype(oldtype)
    return Datatype.build(old.segments, lb=lb, extent=extent, name=f"resized({old.name})")
