"""Coupled-application streaming pipelines over MPI inter-communicators.

Two (or three) live applications — a *producer* group writing checkpoints,
an optional *transformer* group, and a *consumer* group performing in-situ
analysis — run concurrently on one shared engine and file system, wired
together with :class:`~repro.mpi.comm.Intercomm` bridges built by
:class:`CoupledPipeline` from a declarative :class:`PipelineSpec`.
Producers stream per-step checkpoint files through the nonblocking write
API while consumers read the same bytes through the nonblocking read API;
every delivered byte stream is verified against the cross-group
serialisability checker (:func:`repro.verify.atomicity.check_stream_atomicity`).
"""

from .spec import COORDINATIONS, ROLES, PipelineSpec, StageSpec
from .runner import (
    CoupledPipeline,
    PipelineResult,
    expected_consumer_streams,
    step_payload,
)

__all__ = [
    "COORDINATIONS",
    "ROLES",
    "StageSpec",
    "PipelineSpec",
    "CoupledPipeline",
    "PipelineResult",
    "expected_consumer_streams",
    "step_payload",
]
