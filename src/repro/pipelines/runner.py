"""The coupled-pipeline runner: wire stage groups with intercomms and stream.

One :func:`~repro.mpi.runtime.run_spmd` world hosts every stage:
``Comm_split`` carves it into per-stage communicators (producers occupy
world ranks ``[0, P)``), adjacent stages are bridged with
:meth:`~repro.mpi.comm.Communicator.Create_intercomm`, and each stage runs
its role loop over the per-step checkpoint files:

* **producers** write step ``s``'s column-wise partition — blocking in
  ``barrier`` mode, split-collective (overlapping their own compute with
  the commit) in ``overlapped`` mode — then hand the step off across the
  bridge;
* the optional **transformer** relays the handoff between its two bridges,
  charging its per-step transform cost (control moves through the bridges,
  data moves through the file: the producer-partition to
  consumer-partition N:M redistribution happens in the byte range);
* **consumers** read their own column-wise partition of the same file
  through ``Iread_all``, overlapping analysis compute, and record the
  delivered byte stream.

Every rank opens the shared files with the ``provenance_base`` Info hint
set to its stage's world offset, so client ids and per-byte provenance are
*world* ranks and the per-step byte streams can be verified with
:func:`~repro.verify.atomicity.check_stream_atomicity` — stale- and
torn-read detection across the group boundary.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..core.regions import FileRegionSet, build_region_sets
from ..datatypes import CHAR, subarray
from ..fs.filesystem import FSConfig, ParallelFileSystem
from ..io import Info, MPIFile
from ..mpi.comm import CommCostModel, Communicator, Intercomm
from ..mpi.runtime import run_spmd
from ..patterns.partition import column_wise_spec, column_wise_views
from ..patterns.workloads import rank_pattern_bytes
from ..verify.atomicity import (
    AtomicityReport,
    ReadObservation,
    StreamTrace,
    check_stream_atomicity,
    rekey_regions,
)
from .spec import PipelineSpec

__all__ = [
    "CoupledPipeline",
    "PipelineResult",
    "expected_consumer_streams",
    "step_payload",
]

#: Bridge message tags for the streaming handoff protocol.
TAG_READY = 11
TAG_DONE = 12
#: Per-bridge construction tag base (bridge ``i`` uses ``TAG_BRIDGE + i``).
TAG_BRIDGE = 100

#: Default virtual cost of bridge/stage messaging (matches the overlap bench).
DEFAULT_COMM_COST = CommCostModel(latency=30e-6, byte_cost=1e-8)


def step_payload(spec: PipelineSpec, step: int, world_rank: int, nbytes: int) -> bytes:
    """The deterministic bytes producer ``world_rank`` writes at ``step``.

    Seeded by ``(step, world rank)`` so every producer's every step is
    byte-distinguishable: a consumer observing step ``s-1``'s bytes where
    step ``s`` was committed is caught as a stale read, not waved through.
    """
    return rank_pattern_bytes((step + 1) * spec.total_ranks + world_rank, nbytes)


def producer_regions(spec: PipelineSpec) -> List[FileRegionSet]:
    """Producer file views in the *global* (world-rank) keyspace.

    Producers sit at world offset 0, so their local column-wise views are
    already globally keyed.
    """
    return build_region_sets(
        column_wise_views(spec.M, spec.N, spec.producer.nprocs, spec.ghost)
    )


def consumer_regions(spec: PipelineSpec) -> List[FileRegionSet]:
    """Consumer file views re-keyed into the global (world-rank) keyspace."""
    local = build_region_sets(
        column_wise_views(spec.M, spec.N, spec.consumer.nprocs, 0)
    )
    return rekey_regions(local, spec.stage_offsets[-1])


def expected_consumer_streams(spec: PipelineSpec, step: int) -> List[bytes]:
    """What each consumer rank must deliver for ``step`` once it committed.

    Assembles the full M x N file image from the producer payloads and
    slices out each consumer's view in data-stream order.  Only meaningful
    for disjoint producer views (``ghost == 0``): with overlap the atomic
    outcome depends on the write serialisation order.
    """
    if spec.ghost != 0:
        raise ValueError("expected streams are only defined for ghost == 0")
    image = bytearray(spec.M * spec.N)
    for region in producer_regions(spec):
        payload = step_payload(spec, step, region.rank, region.total_bytes)
        for buf_off, file_off, length in region.buffer_map():
            image[file_off : file_off + length] = payload[buf_off : buf_off + length]
    streams = []
    for region in consumer_regions(spec):
        out = bytearray(region.total_bytes)
        for buf_off, file_off, length in region.buffer_map():
            out[buf_off : buf_off + length] = image[file_off : file_off + length]
        streams.append(bytes(out))
    return streams


@dataclass
class PipelineResult:
    """Outcome of one coupled-pipeline run."""

    spec: PipelineSpec
    #: Maximum virtual finish time over every rank of every stage.
    makespan: float
    #: Host wall clock of the whole simulation.
    wall_seconds: float
    #: Per-world-rank return payloads (role dicts).
    returns: List[Dict[str, Any]]
    #: One globally-rekeyed trace per step, ready for the verifier.
    streams: List[StreamTrace] = field(default_factory=list)
    #: ``(step, consumer local rank) -> delivered bytes``.
    delivered: Dict[Tuple[int, int], bytes] = field(default_factory=dict)

    @property
    def bytes_streamed(self) -> int:
        """Total bytes delivered to consumers over all steps."""
        return sum(len(data) for data in self.delivered.values())

    def verify(self) -> AtomicityReport:
        """Cross-group read serialisability of every step's stream."""
        return check_stream_atomicity(self.streams)


def _open_step(
    stage_comm: Communicator,
    fs: ParallelFileSystem,
    spec: PipelineSpec,
    step: int,
    nprocs: int,
    offset: int,
    ghost: int,
) -> MPIFile:
    """Collectively open step ``step``'s file with this stage's column view."""
    part = column_wise_spec(spec.M, spec.N, nprocs, stage_comm.rank, ghost)
    filetype = subarray(
        list(part.sizes), list(part.subsizes), list(part.starts), CHAR
    ).commit()
    f = MPIFile.Open(
        stage_comm,
        spec.step_filename(step),
        fs,
        info=Info(
            {
                "atomicity_strategy": spec.strategy,
                "provenance_base": str(offset),
            }
        ),
    )
    f.Set_atomicity(spec.atomic)
    f.Set_view(0, CHAR, filetype)
    return f


def _producer_main(
    spec: PipelineSpec,
    fs: ParallelFileSystem,
    stage_comm: Communicator,
    bridge: Intercomm,
    offset: int,
) -> Dict[str, Any]:
    me = stage_comm.rank
    compute = spec.producer.compute_seconds
    view_bytes = column_wise_spec(
        spec.M, spec.N, spec.producer.nprocs, me, spec.ghost
    ).total_bytes
    written = 0
    if spec.coordination == "racing":
        bridge.barrier()  # start line: both groups race from one instant
    acked = -1  # highest consumer-completed step relayed back so far
    for step in range(spec.steps):
        if spec.coordination == "overlapped":
            # Flow control: run at most overlap_depth steps ahead of the
            # consumers.  Acks travel rank0-to-rank0 over the bridge and
            # fan out over the stage communicator.
            while acked < step - spec.overlap_depth:
                msg = (
                    bridge.recv(source=0, tag=TAG_DONE) if me == 0 else None
                )
                acked = stage_comm.bcast(msg, root=0)[1]
        payload = step_payload(spec, step, offset + me, view_bytes)
        f = _open_step(stage_comm, fs, spec, step, spec.producer.nprocs, offset, spec.ghost)
        if spec.coordination == "overlapped":
            f.Write_all_begin(payload)
            stage_comm.clock.advance(compute)
            outcome = f.Write_all_end()
        else:
            outcome = f.Write_all(payload)
            stage_comm.clock.advance(compute)
        f.Close()
        written += outcome.bytes_written
        if spec.coordination == "overlapped":
            if me == 0:
                bridge.send(("ready", step), dest=0, tag=TAG_READY)
        elif spec.coordination == "barrier":
            bridge.barrier()  # release the next stage on step `step`
            bridge.barrier()  # wait for the step to drain downstream
    return {"role": "producer", "rank": me, "bytes_written": written}


def _transformer_main(
    spec: PipelineSpec,
    fs: ParallelFileSystem,
    stage_comm: Communicator,
    prev_bridge: Intercomm,
    next_bridge: Intercomm,
) -> Dict[str, Any]:
    me = stage_comm.rank
    compute = spec.transformer.compute_seconds
    relayed = -1  # highest "done" ack forwarded back to the producers
    for step in range(spec.steps):
        if spec.coordination == "overlapped":
            msg = prev_bridge.recv(source=0, tag=TAG_READY) if me == 0 else None
            stage_comm.bcast(msg, root=0)
            stage_comm.clock.advance(compute)  # the transform itself
            if me == 0:
                next_bridge.send(("ready", step), dest=0, tag=TAG_READY)
            # Relay exactly the acks the producers' flow control will block
            # on before issuing step ``step + 1``; later acks can stay
            # unconsumed once the producers have finished.
            while relayed < step + 1 - spec.overlap_depth:
                msg = next_bridge.recv(source=0, tag=TAG_DONE) if me == 0 else None
                msg = stage_comm.bcast(msg, root=0)
                relayed = msg[1]
                if me == 0:
                    prev_bridge.send(msg, dest=0, tag=TAG_DONE)
        else:  # barrier
            prev_bridge.barrier()  # producers committed step `step`
            stage_comm.clock.advance(compute)
            next_bridge.barrier()  # release the consumers
            next_bridge.barrier()  # consumers finished
            prev_bridge.barrier()  # tell the producers the step drained
    return {"role": "transformer", "rank": me}


def _consumer_main(
    spec: PipelineSpec,
    fs: ParallelFileSystem,
    stage_comm: Communicator,
    bridge: Intercomm,
    offset: int,
) -> Dict[str, Any]:
    me = stage_comm.rank
    compute = spec.consumer.compute_seconds
    view_bytes = column_wise_spec(
        spec.M, spec.N, spec.consumer.nprocs, me, 0
    ).total_bytes
    observed: Dict[int, bytes] = {}
    if spec.coordination == "racing":
        bridge.barrier()
    for step in range(spec.steps):
        if spec.coordination == "overlapped":
            msg = bridge.recv(source=0, tag=TAG_READY) if me == 0 else None
            stage_comm.bcast(msg, root=0)
        elif spec.coordination == "barrier":
            bridge.barrier()  # the step is fully committed upstream
        f = _open_step(stage_comm, fs, spec, step, spec.consumer.nprocs, offset, 0)
        buf = bytearray(view_bytes)
        if spec.coordination == "overlapped":
            request = f.Iread_all(buf)
            stage_comm.clock.advance(compute)
            request.Wait()
        else:
            f.Read_all(buf)
            stage_comm.clock.advance(compute)
        observed[step] = bytes(buf)
        f.Close()
        if spec.coordination == "overlapped":
            if me == 0:
                bridge.send(("done", step), dest=0, tag=TAG_DONE)
        elif spec.coordination == "barrier":
            bridge.barrier()  # step drained: release the upstream stage
    return {"role": "consumer", "rank": me, "streams": observed}


def _rank_main(comm: Communicator, spec: PipelineSpec, fs: ParallelFileSystem):
    """One world rank: split into its stage, build bridges, run its role."""
    stage_idx = spec.stage_of(comm.rank)
    offsets = spec.stage_offsets
    stage_comm = comm.Comm_split(stage_idx, key=comm.rank)
    # Bridges between adjacent stages, built in ascending bridge order so a
    # middle stage constructs its upstream bridge before its downstream one.
    prev_bridge: Optional[Intercomm] = None
    next_bridge: Optional[Intercomm] = None
    for i in range(len(spec.stages) - 1):
        if stage_idx == i:
            next_bridge = stage_comm.Create_intercomm(
                0, comm, offsets[i + 1], tag=TAG_BRIDGE + i
            )
        elif stage_idx == i + 1:
            prev_bridge = stage_comm.Create_intercomm(
                0, comm, offsets[i], tag=TAG_BRIDGE + i
            )
    role = spec.stages[stage_idx].role
    if role == "producer":
        return _producer_main(spec, fs, stage_comm, next_bridge, offsets[stage_idx])
    if role == "transformer":
        return _transformer_main(spec, fs, stage_comm, prev_bridge, next_bridge)
    return _consumer_main(spec, fs, stage_comm, prev_bridge, offsets[stage_idx])


class CoupledPipeline:
    """Run a :class:`PipelineSpec` and collect verified stream traces."""

    def __init__(
        self,
        spec: PipelineSpec,
        fs_config: Optional[FSConfig] = None,
        comm_cost: Optional[CommCostModel] = None,
        timeout: Optional[float] = 120.0,
    ) -> None:
        self.spec = spec
        self.fs_config = fs_config
        self.comm_cost = comm_cost if comm_cost is not None else DEFAULT_COMM_COST
        self.timeout = timeout

    def run(self, fs: Optional[ParallelFileSystem] = None) -> PipelineResult:
        """Execute the pipeline on ``fs`` (or a fresh file system)."""
        spec = self.spec
        if fs is None:
            config = self.fs_config if self.fs_config is not None else FSConfig()
            fs = ParallelFileSystem(config)
        wall_start = time.perf_counter()
        spmd = run_spmd(
            _rank_main,
            spec.total_ranks,
            spec,
            fs,
            comm_cost=self.comm_cost,
            timeout=self.timeout,
        )
        wall_seconds = time.perf_counter() - wall_start
        result = PipelineResult(
            spec=spec,
            makespan=spmd.makespan,
            wall_seconds=wall_seconds,
            returns=list(spmd.returns),
        )
        consumer_offset = spec.stage_offsets[-1]
        for ret in result.returns:
            if ret["role"] == "consumer":
                for step, data in ret["streams"].items():
                    result.delivered[(step, ret["rank"])] = data
        p_regions = producer_regions(spec)
        c_regions = consumer_regions(spec)
        # In the handshaking modes a consumer only reads a step after every
        # producer's write request completed, so the producers count as
        # committed and a baseline observation is a detectable stale read.
        # In racing mode every write is in flight throughout.
        committed = (
            None
            if spec.coordination == "racing"
            else range(spec.producer.nprocs)
        )
        for step in range(spec.steps):
            observations = [
                ReadObservation(
                    consumer_offset + c, c_regions[c], result.delivered[(step, c)]
                )
                for c in range(spec.consumer.nprocs)
                if (step, c) in result.delivered
            ]
            result.streams.append(
                StreamTrace(
                    stream_id=f"step{step}:{spec.step_filename(step)}",
                    write_regions=p_regions,
                    writer_data=[
                        step_payload(spec, step, r.rank, r.total_bytes)
                        for r in p_regions
                    ],
                    observations=observations,
                    committed=committed,
                )
            )
        return result
