"""Declarative pipeline topology: stage groups and coupling discipline.

A coupled pipeline is an ordered list of rank groups — one *producer*
stage, an optional *transformer* stage, one *consumer* stage — plus the
workload geometry (the M x N array the producers checkpoint, partitioned
column-wise over each group independently, which is what makes the file an
N:M redistribution fabric) and the coupling discipline:

``barrier``
    Write-barrier-read: consumers start reading a step only after the
    producers' write completed, and producers start the next step only
    after the consumers finished — the non-overlapped baseline the perf
    gate measures against.
``overlapped``
    Simulate-while-checkpoint: producers overlap the commit of step *s*
    with their own compute via the split-collective / nonblocking write
    API, hand the step off through the intercomm bridge, and run up to
    ``overlap_depth`` steps ahead of consumer acknowledgements; consumers
    overlap their in-situ read with analysis compute via ``Iread_all``.
``racing``
    No coupling at all beyond a start-line barrier: both groups hammer the
    same bytes concurrently.  This is the adversarial configuration the
    cross-group atomicity verifier exists for — un-torn under ``locking``,
    detectably torn under a non-atomic strategy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

__all__ = ["ROLES", "COORDINATIONS", "StageSpec", "PipelineSpec"]

#: Stage roles, in the only order a pipeline may compose them.
ROLES = ("producer", "transformer", "consumer")

#: Coupling disciplines (see the module docstring).
COORDINATIONS = ("barrier", "overlapped", "racing")


@dataclass(frozen=True)
class StageSpec:
    """One rank group of a coupled pipeline."""

    #: ``"producer"``, ``"transformer"`` or ``"consumer"``.
    role: str
    #: Number of ranks in this group.
    nprocs: int
    #: Display name (defaults to the role).
    name: str = ""
    #: Virtual compute charged per step and rank (the simulation /
    #: transformation / analysis work the I/O can overlap with).
    compute_seconds: float = 0.0

    def __post_init__(self) -> None:
        if self.role not in ROLES:
            raise ValueError(f"unknown stage role {self.role!r}; known: {ROLES}")
        if self.nprocs <= 0:
            raise ValueError(f"stage {self.role!r} needs a positive rank count")
        if self.compute_seconds < 0:
            raise ValueError("compute_seconds must be non-negative")
        if not self.name:
            object.__setattr__(self, "name", self.role)


@dataclass(frozen=True)
class PipelineSpec:
    """A full coupled-pipeline scenario."""

    #: Stage groups in pipeline order: producer [, transformer], consumer.
    stages: Tuple[StageSpec, ...]
    #: Checkpoint array geometry (M x N bytes, column-wise partitioned).
    M: int = 32
    N: int = 512
    #: Number of checkpoint/analysis steps (each step is its own file).
    steps: int = 2
    #: Atomicity strategy name for both groups' file handles.
    strategy: str = "locking"
    #: MPI atomic mode on both groups' handles.
    atomic: bool = True
    #: Coupling discipline; see :data:`COORDINATIONS`.
    coordination: str = "barrier"
    #: How many steps producers may run ahead of consumer acknowledgements
    #: (``overlapped`` mode only).
    overlap_depth: int = 1
    #: Base name; step ``s`` goes to ``{filename}.s{s}.dat``.
    filename: str = "/pipeline/ckpt"
    #: Ghost-column overlap between adjacent producer views (paper's R).
    ghost: int = 0

    def __post_init__(self) -> None:
        roles = [s.role for s in self.stages]
        expected = (
            ["producer", "consumer"]
            if len(roles) == 2
            else ["producer", "transformer", "consumer"]
        )
        if roles != expected:
            raise ValueError(
                f"stages must be producer [, transformer], consumer; got {roles}"
            )
        if self.coordination not in COORDINATIONS:
            raise ValueError(
                f"unknown coordination {self.coordination!r}; known: {COORDINATIONS}"
            )
        if self.coordination == "racing" and len(self.stages) != 2:
            raise ValueError("racing mode couples exactly producer + consumer")
        if self.steps <= 0:
            raise ValueError("steps must be positive")
        if self.overlap_depth <= 0:
            raise ValueError("overlap_depth must be positive")
        if self.M <= 0 or self.N <= 0:
            raise ValueError("M and N must be positive")
        if self.ghost < 0:
            raise ValueError("ghost must be non-negative")

    # -- derived layout: producers first in world-rank order -------------------

    @property
    def total_ranks(self) -> int:
        """World size of the coupled run."""
        return sum(s.nprocs for s in self.stages)

    @property
    def stage_offsets(self) -> Tuple[int, ...]:
        """World rank of each stage's local rank 0 (producers start at 0).

        The offset doubles as the stage's ``provenance_base``: global
        client/provenance ids equal world ranks, which is the keyspace the
        cross-group verifier sees.
        """
        offsets = []
        base = 0
        for stage in self.stages:
            offsets.append(base)
            base += stage.nprocs
        return tuple(offsets)

    @property
    def producer(self) -> StageSpec:
        return self.stages[0]

    @property
    def consumer(self) -> StageSpec:
        return self.stages[-1]

    @property
    def transformer(self) -> StageSpec | None:
        return self.stages[1] if len(self.stages) == 3 else None

    def stage_of(self, world_rank: int) -> int:
        """Index of the stage owning ``world_rank``."""
        if not 0 <= world_rank < self.total_ranks:
            raise ValueError(f"world rank {world_rank} outside 0..{self.total_ranks - 1}")
        for idx in reversed(range(len(self.stages))):
            if world_rank >= self.stage_offsets[idx]:
                return idx
        raise AssertionError("unreachable")

    def step_filename(self, step: int) -> str:
        """The checkpoint file of step ``step``."""
        return f"{self.filename}.s{step}.dat"
