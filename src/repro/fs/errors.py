"""Exception hierarchy for the parallel file system substrate."""

from __future__ import annotations

__all__ = [
    "FileSystemError",
    "FileNotFound",
    "FileExists",
    "InvalidRequest",
    "LockingUnsupported",
    "LockViolation",
]


class FileSystemError(Exception):
    """Base class for all file-system substrate errors."""


class FileNotFound(FileSystemError):
    """The named file does not exist."""


class FileExists(FileSystemError):
    """Exclusive creation requested but the file already exists."""


class InvalidRequest(FileSystemError):
    """Malformed read/write/lock request (negative offsets, bad sizes, ...)."""


class LockingUnsupported(FileSystemError):
    """The file system personality does not provide byte-range locking.

    The paper's Cplant/ENFS platform has no file locking; requesting the
    locking-based atomicity strategy there raises this error, and the
    benchmark harness skips that series exactly as the paper's Figure 8 does.
    """


class LockViolation(FileSystemError):
    """A lock protocol rule was broken (double release, foreign release, ...)."""
