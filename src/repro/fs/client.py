"""Per-process file system client.

:class:`FSClient` is the compute-node side of the file system: it owns the
process's injection-link resource, its virtual clock, and one
:class:`ClientCache` per open file.  :class:`ClientFileHandle` is what the
MPI-IO layer (:mod:`repro.io.file`) actually calls: contiguous ``read`` /
``write`` (cached or direct), byte-range ``lock`` / ``unlock``, ``sync`` and
``invalidate``.

Every operation charges virtual time:

* data transfers reserve the client link and the I/O servers holding the
  touched stripes — concurrent clients therefore share server bandwidth;
* lock acquisitions advance the clock to the grant time computed by the lock
  manager, which is where lock serialisation becomes visible;
* cached writes cost only a memory copy until the flush pushes them out.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..mpi.clock import VirtualClock
from .cache import CachePolicy, ClientCache
from .costmodel import CostModel, Resource
from .errors import InvalidRequest
from .filesystem import FileObject, ParallelFileSystem
from .lockmanager import GrantedLock, LockMode

__all__ = ["FSClient", "ClientFileHandle"]

#: Virtual-time bandwidth of a local memory copy (bytes/s) — the cost of a
#: write that lands in the write-behind cache instead of going to a server.
_MEMCPY_BANDWIDTH = 2e9


class FSClient:
    """One compute process's connection to the parallel file system."""

    def __init__(
        self,
        fs: ParallelFileSystem,
        client_id: int,
        clock: Optional[VirtualClock] = None,
        provenance_base: int = 0,
    ) -> None:
        self.fs = fs
        self.client_id = client_id
        self.clock = clock if clock is not None else VirtualClock()
        #: Offset added to explicit per-write provenance overrides.  The
        #: atomicity strategies attribute aggregated writes to *communicator
        #: ranks*; when several independent SPMD jobs share one file system
        #: (the multi-tenant scheduler), each job sets its clients'
        #: ``provenance_base`` to the job's global rank offset so recorded
        #: provenance stays globally unique and cross-job atomicity remains
        #: verifiable.  A single-world run keeps the default of 0, leaving
        #: provenance byte-identical to the direct engine path.
        self.provenance_base = provenance_base
        self.link = Resource(f"client-link-{client_id}", fs.config.client_link_cost)
        self._handles: Dict[str, "ClientFileHandle"] = {}

    def open(self, name: str, create: bool = True) -> "ClientFileHandle":
        """Open (optionally creating) a file; handles are cached per name."""
        if name in self._handles:
            return self._handles[name]
        fobj = self.fs.create(name) if create else self.fs.lookup(name)
        fobj.open_count += 1
        handle = ClientFileHandle(self, fobj)
        self._handles[name] = handle
        return handle

    def close_all(self) -> None:
        """Flush and close every handle this client holds."""
        for handle in list(self._handles.values()):
            handle.close()
        self._handles.clear()

    def _forget(self, name: str) -> None:
        self._handles.pop(name, None)


class ClientFileHandle:
    """An open file as seen by one client process."""

    def __init__(self, client: FSClient, fobj: FileObject) -> None:
        self.client = client
        self.file = fobj
        cfg = client.fs.config
        self._caching = cfg.client_caching
        self.cache = ClientCache(
            fetch=self._timed_fetch,
            store=self._timed_store,
            policy=cfg.cache_policy,
        )
        self._held_locks: List[GrantedLock] = []
        self._closed = False

    # -- internals ------------------------------------------------------------------

    @property
    def clock(self) -> VirtualClock:
        """The owning client's virtual clock."""
        return self.client.clock

    def _charge_transfer(self, offset: int, nbytes: int) -> None:
        """Charge the client link and the touched servers for a transfer."""
        if nbytes <= 0:
            return
        start = self.clock.now
        completion = self.client.link.reserve(start, nbytes)
        for server_idx, server_bytes in self.file.layout.bytes_per_server(offset, nbytes).items():
            end = self.client.fs.servers[server_idx].transfer(start, server_bytes)
            completion = max(completion, end)
        self.clock.advance_to(completion)

    def _timed_store(self, offset: int, data: bytes, writer: Optional[int] = None) -> None:
        """Server write including virtual-time charging (used by the cache
        write-back path and by direct writes)."""
        self._charge_transfer(offset, len(data))
        if writer is None:
            writer = self.client.client_id
        else:
            writer += self.client.provenance_base
        self.file.server_write(offset, data, writer=writer)

    def _timed_fetch(self, offset: int, nbytes: int) -> bytes:
        """Server read including virtual-time charging."""
        self._charge_transfer(offset, nbytes)
        return self.file.server_read(offset, nbytes)

    def _check_open(self) -> None:
        if self._closed:
            raise InvalidRequest(f"file {self.file.name!r} handle is closed")

    # -- data path -----------------------------------------------------------------------

    def write(
        self,
        offset: int,
        data: bytes,
        direct: bool = False,
        writer: Optional[int] = None,
    ) -> int:
        """Write ``data`` at ``offset``.

        ``direct=True`` bypasses the client cache and goes straight to the
        servers — the behaviour of writes performed under a byte-range lock
        ("all read/write requests to it will directly go to the file server",
        Section 3 of the paper).

        ``writer`` overrides the provenance recorded by the byte store: a
        two-phase aggregator writes *on behalf of* the rank whose data won
        the merge.  Provenance overrides always go straight to the servers
        (the cache write-back path carries no per-byte attribution).
        """
        self._check_open()
        if offset < 0:
            raise InvalidRequest("offset must be non-negative")
        data = bytes(data)
        if not data:
            return 0
        if direct or not self._caching or writer is not None:
            self._timed_store(offset, data, writer=writer)
        else:
            # Write-behind: pay only a memory copy now; servers are charged
            # when the dirty pages are flushed.
            self.clock.advance(len(data) / _MEMCPY_BANDWIDTH)
            self.cache.write(offset, data)
        return len(data)

    def write_batch(
        self,
        writes: Sequence[Tuple],
        direct: bool = False,
    ) -> int:
        """Apply a plan's batched writes: ``(offset, data)`` or
        ``(offset, data, writer)`` items, in order.

        This is the execution entry point of the staged write pipeline
        (:class:`repro.core.pipeline.PhaseRunner`): one call per phase, with
        the phase's cache policy applied uniformly.  Returns total bytes
        written.
        """
        total = 0
        for item in writes:
            offset, data = item[0], item[1]
            writer = item[2] if len(item) > 2 else None
            total += self.write(offset, data, direct=direct, writer=writer)
        return total

    def read(self, offset: int, nbytes: int, direct: bool = False) -> bytes:
        """Read ``nbytes`` at ``offset`` (through the cache unless ``direct``)."""
        self._check_open()
        if offset < 0 or nbytes < 0:
            raise InvalidRequest("offset and nbytes must be non-negative")
        if nbytes == 0:
            return b""
        if direct or not self._caching:
            return self._timed_fetch(offset, nbytes)
        return self.cache.read(offset, nbytes)

    def read_batch(
        self, reads: Sequence[Tuple[int, int]], direct: bool = False
    ) -> List[bytes]:
        """Apply a plan's batched reads: ``(offset, nbytes)`` items, in order.

        The execution entry point of the staged read pipeline
        (:class:`repro.core.pipeline.ReadRunner`), mirroring
        :meth:`write_batch`: one call per phase, the phase's cache policy
        applied uniformly.  Returns one bytes object per request.
        """
        return [self.read(offset, nbytes, direct=direct) for offset, nbytes in reads]

    def sync(self) -> int:
        """Flush write-behind data to the servers (``fsync`` /
        ``MPI_File_sync`` client half); returns flushed page count."""
        self._check_open()
        return self.cache.flush()

    def invalidate(self) -> None:
        """Drop cached pages so subsequent reads fetch fresh server data."""
        self._check_open()
        self.cache.invalidate()

    # -- locking -----------------------------------------------------------------------

    def lock(self, start: int, stop: int, mode: str = LockMode.EXCLUSIVE) -> GrantedLock:
        """Acquire a byte-range lock, blocking until granted.

        The clock is advanced to the virtual grant time, so waiting behind
        another process's lock costs virtual time.
        """
        self._check_open()
        manager = self.file.require_lock_manager()
        lock, grant_time = manager.acquire(
            owner=self.client.client_id,
            start=start,
            stop=stop,
            mode=mode,
            now=self.clock.now,
        )
        self.clock.advance_to(grant_time, waiting=True)
        self._held_locks.append(lock)
        return lock

    def unlock(self, lock: GrantedLock) -> None:
        """Release a lock at the current virtual time."""
        self._check_open()
        manager = self.file.require_lock_manager()
        manager.release(lock, now=self.clock.now)
        if lock in self._held_locks:
            self._held_locks.remove(lock)

    def unlock_all(self) -> int:
        """Release every lock this handle still holds."""
        self._check_open()
        if not self._held_locks:
            return 0
        manager = self.file.require_lock_manager()
        count = 0
        for lock in list(self._held_locks):
            manager.release(lock, now=self.clock.now)
            count += 1
        self._held_locks.clear()
        return count

    # -- lifecycle -----------------------------------------------------------------------

    @property
    def size(self) -> int:
        """Current size of the file in bytes."""
        return self.file.size

    def close(self) -> None:
        """Flush, drop locks and tokens, and close the handle."""
        if self._closed:
            return
        self.cache.flush()
        if self._held_locks and self.file.lock_manager is not None:
            self.unlock_all()
        lm = self.file.lock_manager
        if lm is not None and hasattr(lm, "relinquish_tokens"):
            lm.relinquish_tokens(self.client.client_id)
        self.file.open_count -= 1
        self._closed = True
        self.client._forget(self.file.name)
