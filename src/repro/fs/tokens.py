"""Distributed (token-based) byte-range lock manager — GPFS style.

GPFS improves lock scalability by handing out *tokens*: the first client to
lock a byte range pays a round trip to the token server, but once a client
holds a token covering a range it can lock and unlock within that range
locally, without contacting the server [Schmuck & Haskin, FAST'02] — the
behaviour the paper references in Section 3.2.  When another client needs an
overlapping range the token must be revoked, which costs a revocation round
trip and must wait for any active lock inside the conflicting range.

The important consequence the paper measures is unchanged: **concurrent
writes to overlapping ranges are still sequential**, token protocol or not.
The distributed manager only cheapens repeated, non-conflicting lock traffic.

Tokens come in the two lock modes (reader-writer semantics, as in GPFS):
**read tokens** may be held by any number of clients over the same range and
are only revoked when a writer needs the range; a **write token** is
exclusive and conflicts with everyone else's tokens of either mode.  A
shared-mode lock therefore never revokes another reader's token — the read
side of a collective stays revocation-free no matter how many clients read
the same overlapped bytes.

:class:`DistributedLockManager` exposes the same ``acquire``/``release``
interface as :class:`~repro.fs.lockmanager.CentralLockManager`, so the
locking atomicity strategy and the FS client are oblivious to which protocol
a file-system personality uses.
"""

from __future__ import annotations

import itertools
import threading
from typing import Dict, List, Optional, Tuple

from ..core.engine import current_task
from ..core.intervals import Interval, IntervalSet
from .errors import InvalidRequest, LockViolation
from .lockmanager import GrantedLock, LockMode, _WaiterQueue

__all__ = ["DistributedLockManager"]


class DistributedLockManager:
    """Token-based byte-range lock manager with virtual-time accounting.

    Parameters
    ----------
    acquire_latency:
        Virtual-time cost of obtaining a token from the token server.
    revoke_latency:
        Additional virtual-time cost per client whose token must be revoked.
    local_latency:
        Virtual-time cost of a lock acquired entirely under an already-held
        token (no server communication).
    """

    def __init__(
        self,
        acquire_latency: float = 0.0,
        revoke_latency: float = 0.0,
        local_latency: float = 0.0,
    ) -> None:
        for name, value in (
            ("acquire_latency", acquire_latency),
            ("revoke_latency", revoke_latency),
            ("local_latency", local_latency),
        ):
            if value < 0:
                raise ValueError(f"{name} must be non-negative")
        self.acquire_latency = acquire_latency
        self.revoke_latency = revoke_latency
        self.local_latency = local_latency
        #: Exclusive (write) tokens per owner.
        self._tokens: Dict[int, IntervalSet] = {}
        #: Shared (read) tokens per owner; any number may overlap.
        self._read_tokens: Dict[int, IntervalSet] = {}
        self._granted: Dict[int, GrantedLock] = {}
        self._history: List[GrantedLock] = []
        self._cond = threading.Condition()
        self._waiters = _WaiterQueue()
        self._ids = itertools.count(1)
        self._local_grants = 0
        self._token_acquisitions = 0
        self._revocations = 0

    # -- statistics -----------------------------------------------------------

    @property
    def local_grant_count(self) -> int:
        """Locks granted purely from a cached token (no server traffic)."""
        with self._cond:
            return self._local_grants

    @property
    def token_acquisition_count(self) -> int:
        """Locks that required a token-server round trip."""
        with self._cond:
            return self._token_acquisitions

    @property
    def revocation_count(self) -> int:
        """Number of token revocations performed."""
        with self._cond:
            return self._revocations

    def token_of(self, owner: int) -> IntervalSet:
        """Byte ranges for which ``owner`` currently holds the write token."""
        with self._cond:
            return self._tokens.get(owner, IntervalSet.empty())

    def read_token_of(self, owner: int) -> IntervalSet:
        """Byte ranges for which ``owner`` currently holds a read token."""
        with self._cond:
            return self._read_tokens.get(owner, IntervalSet.empty())

    def held_locks(self) -> List[GrantedLock]:
        """Snapshot of currently granted (active) locks."""
        with self._cond:
            return list(self._granted.values())

    # -- acquisition / release ---------------------------------------------------

    def acquire(
        self,
        owner: int,
        start: int,
        stop: int,
        mode: str = LockMode.EXCLUSIVE,
        now: float = 0.0,
        timeout: Optional[float] = 60.0,
    ) -> Tuple[GrantedLock, float]:
        """Acquire a byte-range lock; see
        :meth:`repro.fs.lockmanager.CentralLockManager.acquire` for the
        contract.  Token state determines the virtual-time cost."""
        if mode not in (LockMode.SHARED, LockMode.EXCLUSIVE):
            raise InvalidRequest(f"unknown lock mode {mode!r}")
        if start < 0 or stop < start:
            raise InvalidRequest(f"invalid lock range [{start}, {stop})")
        interval = Interval(start, stop)
        wanted = IntervalSet.single(start, stop)
        task = current_task()
        if task is not None:
            # Token-server requests happen in global virtual-time order (see
            # CentralLockManager.acquire); park on the scheduler while an
            # *active* lock by another client overlaps the range.
            task.engine.sequence(task)
            while True:
                with self._cond:
                    if not self._conflicts(interval, mode, owner):
                        return self._grant(owner, interval, wanted, mode, now)
                self._waiters.park(
                    task, interval, mode, owner,
                    f"token-lock[{start},{stop}) owner={owner}",
                )
        with self._cond:
            # Wait until no *active* lock by another client overlaps the range.
            while self._conflicts(interval, mode, owner):
                if not self._cond.wait(timeout=timeout):
                    raise TimeoutError(
                        f"lock acquisition for [{start},{stop}) by {owner} timed out"
                    )
            return self._grant(owner, interval, wanted, mode, now)

    def _grant(
        self,
        owner: int,
        interval: Interval,
        wanted: IntervalSet,
        mode: str,
        now: float,
    ) -> Tuple[GrantedLock, float]:
        """Grant a conflict-free request (``self._cond`` must be held)."""
        have_write = self._tokens.get(owner, IntervalSet.empty())
        have_read = self._read_tokens.get(owner, IntervalSet.empty())
        # A write token also satisfies reads; a read token never satisfies
        # writes.
        covered = have_write.covers(wanted) or (
            mode == LockMode.SHARED and have_read.covers(wanted)
        )
        if covered:
            cost = self.local_latency
            self._local_grants += 1
        else:
            # Revoke the conflicting part of everyone else's tokens: a read
            # acquisition conflicts only with write tokens (readers co-hold),
            # a write acquisition conflicts with tokens of either mode.
            revoked = 0
            for other, token in list(self._tokens.items()):
                if other == owner:
                    continue
                if token.overlaps(wanted):
                    self._tokens[other] = token.subtract(wanted)
                    revoked += 1
            if mode == LockMode.EXCLUSIVE:
                for other, token in list(self._read_tokens.items()):
                    if other == owner:
                        continue
                    if token.overlaps(wanted):
                        self._read_tokens[other] = token.subtract(wanted)
                        revoked += 1
                self._tokens[owner] = have_write.union(wanted)
            else:
                self._read_tokens[owner] = have_read.union(wanted)
            cost = self.acquire_latency + revoked * self.revoke_latency
            self._token_acquisitions += 1
            self._revocations += revoked

        prior_releases = [
            g.released_at
            for g in self._history
            if g.released_at is not None and g.conflicts_with(interval, mode, owner)
        ]
        grant_time = max([now] + prior_releases) + cost
        lock = GrantedLock(
            lock_id=next(self._ids),
            owner=owner,
            interval=interval,
            mode=mode,
            granted_at=grant_time,
        )
        self._granted[lock.lock_id] = lock
        return lock, grant_time

    def _conflicts(self, interval: Interval, mode: str, owner: int) -> bool:
        return any(
            g.conflicts_with(interval, mode, owner) for g in self._granted.values()
        )

    def release(self, lock: GrantedLock, now: float = 0.0) -> None:
        """Release an active lock (the token stays cached with the owner)."""
        with self._cond:
            if lock.lock_id not in self._granted:
                raise LockViolation(f"lock {lock.lock_id} is not held")
            stored = self._granted.pop(lock.lock_id)
            stored.released_at = now
            lock.released_at = now
            self._history.append(stored)
            self._cond.notify_all()
        self._waiters.wake_eligible(self._cond, self._conflicts)

    def release_all(self, owner: int, now: float = 0.0) -> int:
        """Release every active lock held by ``owner``; returns how many."""
        with self._cond:
            mine = [g for g in self._granted.values() if g.owner == owner]
            for g in mine:
                del self._granted[g.lock_id]
                g.released_at = now
                self._history.append(g)
            if mine:
                self._cond.notify_all()
        if mine:
            self._waiters.wake_eligible(self._cond, self._conflicts)
        return len(mine)

    def relinquish_tokens(self, owner: int) -> None:
        """Drop all tokens cached by ``owner`` (e.g. when it closes the file)."""
        with self._cond:
            self._tokens.pop(owner, None)
            self._read_tokens.pop(owner, None)

    def reset_history(self) -> None:
        """Forget released-lock history and statistics."""
        with self._cond:
            self._history.clear()
            self._local_grants = 0
            self._token_acquisitions = 0
            self._revocations = 0
