"""Parallel file system substrate.

In-memory striped file system with POSIX per-call atomicity, client caches
(read-ahead / write-behind), central and distributed byte-range lock
managers, and a virtual-time cost model used to estimate I/O bandwidth.
"""

from .cache import CachePolicy, CacheStats, ClientCache
from .client import ClientFileHandle, FSClient
from .costmodel import CostModel, Resource
from .errors import (
    FileExists,
    FileNotFound,
    FileSystemError,
    InvalidRequest,
    LockingUnsupported,
    LockViolation,
)
from .filesystem import FileObject, FSConfig, LockProtocol, ParallelFileSystem
from .lockmanager import CentralLockManager, GrantedLock, LockMode
from .presets import PRESET_NAMES, enfs_config, gpfs_config, preset, xfs_config
from .server import IOServer, ServerPool
from .storage import NO_WRITER, ByteStore
from .striping import StripeChunk, StripingLayout
from .tokens import DistributedLockManager

__all__ = [
    "ParallelFileSystem",
    "FSConfig",
    "LockProtocol",
    "FileObject",
    "FSClient",
    "ClientFileHandle",
    "ByteStore",
    "NO_WRITER",
    "StripingLayout",
    "StripeChunk",
    "IOServer",
    "ServerPool",
    "CostModel",
    "Resource",
    "CentralLockManager",
    "DistributedLockManager",
    "LockMode",
    "GrantedLock",
    "ClientCache",
    "CachePolicy",
    "CacheStats",
    "enfs_config",
    "xfs_config",
    "gpfs_config",
    "preset",
    "PRESET_NAMES",
    "FileSystemError",
    "FileNotFound",
    "FileExists",
    "InvalidRequest",
    "LockingUnsupported",
    "LockViolation",
]
