"""Virtual-time cost model primitives.

The performance side of the reproduction (Figure 8) is computed in virtual
time: every shared resource — an I/O server, a client's network link, the
lock manager — is modelled as a :class:`Resource` that can serve one request
at a time.  A request arriving at virtual time ``t`` with service duration
``d`` begins at ``max(t, next_free)`` and completes at ``begin + d``; the
resource then remains busy until that completion time.  Requests issued by
concurrently running rank threads therefore queue up on shared resources in
virtual time exactly as they would on real hardware, which is what produces
the locking-serialisation and bandwidth-sharing effects the paper measures.

:class:`CostModel` converts request sizes into service durations using a
simple ``latency + bytes / bandwidth`` model.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

from ..core.engine import sequence_point

__all__ = ["CostModel", "Resource"]


@dataclass(frozen=True)
class CostModel:
    """Latency/bandwidth service-time model.

    Parameters
    ----------
    latency:
        Fixed per-request overhead in seconds.
    bandwidth:
        Sustained transfer rate in bytes/second.  ``float("inf")`` makes the
        transfer time zero (useful for tests that only care about latencies).
    """

    latency: float = 0.0
    bandwidth: float = float("inf")

    def __post_init__(self) -> None:
        if self.latency < 0:
            raise ValueError("latency must be non-negative")
        if self.bandwidth <= 0:
            raise ValueError("bandwidth must be positive")

    def service_time(self, nbytes: int) -> float:
        """Seconds needed to transfer ``nbytes``."""
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        if self.bandwidth == float("inf"):
            return self.latency
        return self.latency + nbytes / self.bandwidth


class Resource:
    """A serially-reusable resource with a virtual-time queue.

    Reservations made from engine tasks (SPMD ranks) pass a scheduler
    *sequence point* first: the task yields to the event loop if any ready
    task has an earlier virtual time, so resources are reserved in global
    virtual-time order — the discrete-event ordering — and every run of the
    same workload produces the identical queueing sequence.  A plain
    ``threading.Lock`` still guards the counters for non-engine callers
    (direct unit-test use).
    """

    def __init__(self, name: str, cost: CostModel) -> None:
        self.name = name
        self.cost = cost
        self._next_free = 0.0
        self._busy_time = 0.0
        self._requests = 0
        self._lock = threading.Lock()

    def reserve(self, start: float, nbytes: int) -> float:
        """Reserve the resource for a transfer of ``nbytes`` starting no
        earlier than virtual time ``start``; returns the completion time."""
        sequence_point()
        duration = self.cost.service_time(nbytes)
        with self._lock:
            begin = max(start, self._next_free)
            end = begin + duration
            self._next_free = end
            self._busy_time += duration
            self._requests += 1
            return end

    def reserve_duration(self, start: float, duration: float) -> float:
        """Reserve an explicit ``duration`` (used for non-transfer services
        such as lock-manager round trips)."""
        sequence_point()
        if duration < 0:
            raise ValueError("duration must be non-negative")
        with self._lock:
            begin = max(start, self._next_free)
            end = begin + duration
            self._next_free = end
            self._busy_time += duration
            self._requests += 1
            return end

    @property
    def next_free(self) -> float:
        """Virtual time at which the resource becomes idle."""
        with self._lock:
            return self._next_free

    @property
    def busy_time(self) -> float:
        """Total virtual busy time accumulated."""
        with self._lock:
            return self._busy_time

    @property
    def request_count(self) -> int:
        """Number of reservations made."""
        with self._lock:
            return self._requests

    def reset(self) -> None:
        """Clear all accounting (between benchmark repetitions)."""
        with self._lock:
            self._next_free = 0.0
            self._busy_time = 0.0
            self._requests = 0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Resource({self.name!r}, next_free={self._next_free:.6f})"
