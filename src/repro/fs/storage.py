"""In-memory backing store with per-byte writer provenance.

:class:`ByteStore` holds the bytes of one file plus, for every byte, the id
of the writer that last stored it.  Provenance is what makes MPI-atomicity
*verifiable*: after a concurrent overlapping write the checker in
:mod:`repro.verify.atomicity` can ask, for every overlapped region, whether
all of its bytes came from a single writer — the definition of the MPI atomic
mode — without having to rely on recognisable data patterns.

The store itself is protected by a lock and each individual update is applied
atomically, which models a POSIX-compliant file system where every single
``write()`` call is atomic (Section 2.1 of the paper).  MPI-level atomicity
violations remain perfectly observable because they arise from the
*interleaving of multiple calls*, never from a single call being torn.
"""

from __future__ import annotations

import threading
from typing import Optional, Tuple

import numpy as np

__all__ = ["ByteStore", "NO_WRITER"]

#: Provenance value for bytes never written.
NO_WRITER = -1


class ByteStore:
    """Growable byte storage with writer provenance.

    Parameters
    ----------
    initial_capacity:
        Bytes to pre-allocate; the store grows geometrically as needed.
    """

    def __init__(self, initial_capacity: int = 4096) -> None:
        if initial_capacity < 0:
            raise ValueError("initial_capacity must be non-negative")
        cap = max(16, int(initial_capacity))
        self._data = np.zeros(cap, dtype=np.uint8)
        self._writer = np.full(cap, NO_WRITER, dtype=np.int32)
        self._size = 0
        self._lock = threading.Lock()

    # -- internal -------------------------------------------------------------

    def _ensure_capacity(self, needed: int) -> None:
        cap = self._data.shape[0]
        if needed <= cap:
            return
        new_cap = cap
        while new_cap < needed:
            new_cap *= 2
        data = np.zeros(new_cap, dtype=np.uint8)
        writer = np.full(new_cap, NO_WRITER, dtype=np.int32)
        data[: self._size] = self._data[: self._size]
        writer[: self._size] = self._writer[: self._size]
        self._data = data
        self._writer = writer

    # -- API -------------------------------------------------------------------

    @property
    def size(self) -> int:
        """Current file size in bytes (highest byte ever written + 1)."""
        with self._lock:
            return self._size

    def write(self, offset: int, data: bytes | bytearray | memoryview | np.ndarray,
              writer: int = NO_WRITER) -> int:
        """Atomically store ``data`` at ``offset``; returns bytes written.

        ``writer`` tags the provenance of every byte written by this call.
        """
        if offset < 0:
            raise ValueError("offset must be non-negative")
        buf = np.frombuffer(bytes(data), dtype=np.uint8) if not isinstance(data, np.ndarray) \
            else np.ascontiguousarray(data).view(np.uint8).reshape(-1)
        n = buf.shape[0]
        if n == 0:
            return 0
        with self._lock:
            end = offset + n
            self._ensure_capacity(end)
            self._data[offset:end] = buf
            self._writer[offset:end] = writer
            if end > self._size:
                self._size = end
            return n

    def read(self, offset: int, nbytes: int) -> bytes:
        """Atomically read ``nbytes`` starting at ``offset``.

        Bytes beyond the current end of file read as zero, matching the
        behaviour of a sparse file.
        """
        if offset < 0 or nbytes < 0:
            raise ValueError("offset and nbytes must be non-negative")
        if nbytes == 0:
            return b""
        with self._lock:
            out = np.zeros(nbytes, dtype=np.uint8)
            end = min(offset + nbytes, self._size)
            if end > offset:
                out[: end - offset] = self._data[offset:end]
            return out.tobytes()

    def writers(self, offset: int, nbytes: int) -> np.ndarray:
        """Provenance of each byte in ``[offset, offset + nbytes)``."""
        if offset < 0 or nbytes < 0:
            raise ValueError("offset and nbytes must be non-negative")
        with self._lock:
            out = np.full(nbytes, NO_WRITER, dtype=np.int32)
            end = min(offset + nbytes, self._size)
            if end > offset:
                out[: end - offset] = self._writer[offset:end]
            return out

    def distinct_writers(self, offset: int, nbytes: int) -> Tuple[int, ...]:
        """The set of writers that produced the bytes of the given range,
        excluding never-written bytes."""
        w = self.writers(offset, nbytes)
        vals = np.unique(w)
        return tuple(int(v) for v in vals if v != NO_WRITER)

    def truncate(self, size: int = 0) -> None:
        """Shrink (or extend with zeros) the file to ``size`` bytes."""
        if size < 0:
            raise ValueError("size must be non-negative")
        with self._lock:
            self._ensure_capacity(size)
            if size < self._size:
                self._data[size:self._size] = 0
                self._writer[size:self._size] = NO_WRITER
            self._size = size

    def snapshot(self) -> bytes:
        """The full file contents as bytes."""
        with self._lock:
            return self._data[: self._size].tobytes()
