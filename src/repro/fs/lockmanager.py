"""Central byte-range lock manager (NFS/XFS style).

The locking-based atomicity strategy wraps every MPI write in an exclusive
byte-range lock covering the process's whole file-view extent (Section 3.2 of
the paper).  This module provides the lock service: shared read locks,
exclusive write locks, blocking acquisition, and — because performance is
measured in virtual time — propagation of the *virtual* release time of a
conflicting lock to the waiting client, so lock-induced serialisation shows
up in the measured bandwidth.

The manager is "central" in the paper's sense: every acquisition pays one
round trip to the manager (``request_latency``), and conflicting requests are
granted strictly one at a time.  The GPFS-style distributed variant lives in
:mod:`repro.fs.tokens`.
"""

from __future__ import annotations

import itertools
import threading
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..core.engine import Task, current_task
from ..core.intervals import Interval
from .errors import InvalidRequest, LockViolation

__all__ = ["LockMode", "GrantedLock", "CentralLockManager"]


class LockMode:
    """Lock modes: shared (read) and exclusive (write)."""

    SHARED = "shared"
    EXCLUSIVE = "exclusive"


@dataclass
class GrantedLock:
    """A currently-held byte-range lock."""

    lock_id: int
    owner: int
    interval: Interval
    mode: str
    #: Virtual time at which the lock was granted.
    granted_at: float = 0.0
    #: Virtual time at which the lock was released (filled in on release).
    released_at: Optional[float] = field(default=None, compare=False)

    def conflicts_with(self, interval: Interval, mode: str, owner: int) -> bool:
        """True when a new request by ``owner`` for ``interval``/``mode``
        cannot coexist with this granted lock."""
        if owner == self.owner:
            return False
        if not self.interval.overlaps(interval):
            return False
        return self.mode == LockMode.EXCLUSIVE or mode == LockMode.EXCLUSIVE


def _requests_conflict(
    a_iv: Interval, a_mode: str, a_owner: int,
    b_iv: Interval, b_mode: str, b_owner: int,
) -> bool:
    """Whether two pending lock requests cannot be granted together."""
    if a_owner == b_owner:
        return False
    if not a_iv.overlaps(b_iv):
        return False
    return a_mode == LockMode.EXCLUSIVE or b_mode == LockMode.EXCLUSIVE


class _WaiterQueue:
    """Engine-task waiter queue shared by both lock managers.

    Tasks park with their pending request attached; :meth:`wake_eligible`
    wakes the waiters whose request no longer conflicts, granting greedily
    in queue order against the held locks *plus* the requests already woken
    in the same pass — so a convoy of exclusive waiters on one range wakes
    exactly one task per release instead of the whole queue, and a fully
    serialised queue costs O(P) hand-offs, not O(P^2).  Waiters re-check
    their predicate when they resume, so an over-eager wake only re-parks.
    Shared readers wake together.
    """

    def __init__(self) -> None:
        self._waiters: List[Tuple["Task", Interval, str, int]] = []

    def park(self, task: "Task", interval: Interval, mode: str, owner: int,
             reason: str) -> None:
        """Park the current task until a release makes its request eligible."""
        entry = (task, interval, mode, owner)
        self._waiters.append(entry)
        try:
            task.engine.wait(reason)
        except BaseException:
            # Cancelled or aborted while parked: drop the stale registration.
            if entry in self._waiters:
                self._waiters.remove(entry)
            raise

    def wake_eligible(self, cond: threading.Condition, conflicts) -> None:
        """Wake the waiters for whom ``conflicts(interval, mode, owner)`` is
        False.  The scan runs under ``cond`` (the manager's lock); the wakes
        happen outside it."""
        if not self._waiters:
            return
        woken: List[Tuple["Task", Interval, str, int]] = []
        with cond:
            for entry in list(self._waiters):
                _, interval, mode, owner = entry
                if conflicts(interval, mode, owner):
                    continue
                if any(
                    _requests_conflict(interval, mode, owner, w_iv, w_mode, w_owner)
                    for _, w_iv, w_mode, w_owner in woken
                ):
                    continue
                woken.append(entry)
                self._waiters.remove(entry)
        for entry in woken:
            entry[0].engine.wake(entry[0])


class CentralLockManager:
    """Blocking byte-range lock manager with virtual-time accounting.

    Callers running as engine tasks (the SPMD ranks) park on the scheduler
    while a conflicting lock is held — the manager's queue is then processed
    deterministically in virtual-time order.  Callers on plain threads (the
    lock manager's own unit tests) fall back to a condition variable.
    """

    def __init__(self, request_latency: float = 0.0) -> None:
        if request_latency < 0:
            raise ValueError("request_latency must be non-negative")
        self.request_latency = request_latency
        self._granted: Dict[int, GrantedLock] = {}
        #: Released locks, kept so later acquisitions can be ordered after the
        #: virtual release time of conflicting locks even when the real-time
        #: race has already been resolved (see :meth:`acquire`).
        self._history: List[GrantedLock] = []
        self._cond = threading.Condition()
        self._waiters = _WaiterQueue()
        self._ids = itertools.count(1)
        self._total_waits = 0
        self._grants_by_mode: Dict[str, int] = {
            LockMode.SHARED: 0,
            LockMode.EXCLUSIVE: 0,
        }

    # -- queries -----------------------------------------------------------------

    def held_locks(self) -> List[GrantedLock]:
        """Snapshot of currently granted locks."""
        with self._cond:
            return list(self._granted.values())

    @property
    def wait_count(self) -> int:
        """How many acquisitions had to wait for a conflicting lock."""
        with self._cond:
            return self._total_waits

    @property
    def shared_grant_count(self) -> int:
        """Shared-mode (reader) locks granted since the last reset."""
        with self._cond:
            return self._grants_by_mode[LockMode.SHARED]

    @property
    def exclusive_grant_count(self) -> int:
        """Exclusive-mode (writer) locks granted since the last reset."""
        with self._cond:
            return self._grants_by_mode[LockMode.EXCLUSIVE]

    # -- acquisition / release ------------------------------------------------------

    def acquire(
        self,
        owner: int,
        start: int,
        stop: int,
        mode: str = LockMode.EXCLUSIVE,
        now: float = 0.0,
        timeout: Optional[float] = 60.0,
    ) -> Tuple[GrantedLock, float]:
        """Acquire a byte-range lock, blocking while conflicting locks are held.

        Parameters
        ----------
        owner:
            Requesting client id (MPI rank in this library).
        start, stop:
            Half-open byte range to lock.
        mode:
            :data:`LockMode.SHARED` or :data:`LockMode.EXCLUSIVE`.
        now:
            The requester's current virtual time.
        timeout:
            Real-time safety net in seconds.

        Returns
        -------
        (lock, grant_time):
            The granted lock and the virtual time at which it was granted —
            at least ``now + request_latency``, and no earlier than the
            virtual release time of any conflicting lock that had to be
            waited for.
        """
        if mode not in (LockMode.SHARED, LockMode.EXCLUSIVE):
            raise InvalidRequest(f"unknown lock mode {mode!r}")
        if start < 0 or stop < start:
            raise InvalidRequest(f"invalid lock range [{start}, {stop})")
        interval = Interval(start, stop)
        task = current_task()
        if task is not None:
            # Requests reach the manager in global virtual-time order, so a
            # run's lock-grant sequence is deterministic.
            task.engine.sequence(task)
            waited = False
            while True:
                with self._cond:
                    if not self._conflicts(interval, mode, owner):
                        if waited:
                            self._total_waits += 1
                        return self._grant(owner, interval, mode, now)
                waited = True
                self._waiters.park(
                    task, interval, mode, owner, f"lock[{start},{stop}) owner={owner}"
                )
        with self._cond:
            waited = False
            while self._conflicts(interval, mode, owner):
                waited = True
                if not self._cond.wait(timeout=timeout):
                    raise TimeoutError(
                        f"lock acquisition for [{start},{stop}) by {owner} timed out"
                    )
            if waited:
                self._total_waits += 1
            return self._grant(owner, interval, mode, now)

    def _conflicts(self, interval: Interval, mode: str, owner: int) -> bool:
        return any(
            g.conflicts_with(interval, mode, owner) for g in self._granted.values()
        )

    def _grant(
        self, owner: int, interval: Interval, mode: str, now: float
    ) -> Tuple[GrantedLock, float]:
        # The grant cannot happen, in virtual time, before the virtual
        # release of any conflicting lock that has already been released —
        # even if, in scheduling time, the conflict was over before this
        # request arrived.  This is what turns lock contention into
        # virtual-time serialisation.
        prior_releases = [
            g.released_at
            for g in self._history
            if g.released_at is not None and g.conflicts_with(interval, mode, owner)
        ]
        grant_time = max([now] + prior_releases) + self.request_latency
        lock = GrantedLock(
            lock_id=next(self._ids),
            owner=owner,
            interval=interval,
            mode=mode,
            granted_at=grant_time,
        )
        self._granted[lock.lock_id] = lock
        self._grants_by_mode[mode] += 1
        return lock, grant_time


    def release(self, lock: GrantedLock, now: float = 0.0) -> None:
        """Release a previously granted lock at virtual time ``now``."""
        with self._cond:
            if lock.lock_id not in self._granted:
                raise LockViolation(f"lock {lock.lock_id} is not held")
            stored = self._granted.pop(lock.lock_id)
            stored.released_at = now
            # Keep the caller's object in sync so waiters polling either see it.
            lock.released_at = now
            self._history.append(stored)
            self._cond.notify_all()
        self._waiters.wake_eligible(self._cond, self._conflicts)

    def release_all(self, owner: int, now: float = 0.0) -> int:
        """Release every lock held by ``owner``; returns how many."""
        with self._cond:
            mine = [g for g in self._granted.values() if g.owner == owner]
            for g in mine:
                del self._granted[g.lock_id]
                g.released_at = now
                self._history.append(g)
            if mine:
                self._cond.notify_all()
        if mine:
            self._waiters.wake_eligible(self._cond, self._conflicts)
        return len(mine)

    def reset_history(self) -> None:
        """Forget released-lock history (between benchmark repetitions)."""
        with self._cond:
            self._history.clear()
            self._total_waits = 0
            self._grants_by_mode = {LockMode.SHARED: 0, LockMode.EXCLUSIVE: 0}
