"""Central byte-range lock manager (NFS/XFS style).

The locking-based atomicity strategy wraps every MPI write in an exclusive
byte-range lock covering the process's whole file-view extent (Section 3.2 of
the paper).  This module provides the lock service: shared read locks,
exclusive write locks, blocking acquisition, and — because performance is
measured in virtual time — propagation of the *virtual* release time of a
conflicting lock to the waiting client, so lock-induced serialisation shows
up in the measured bandwidth.

The manager is "central" in the paper's sense: every acquisition pays one
round trip to the manager (``request_latency``), and conflicting requests are
granted strictly one at a time.  The GPFS-style distributed variant lives in
:mod:`repro.fs.tokens`.
"""

from __future__ import annotations

import itertools
import threading
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..core.intervals import Interval
from .errors import InvalidRequest, LockViolation

__all__ = ["LockMode", "GrantedLock", "CentralLockManager"]


class LockMode:
    """Lock modes: shared (read) and exclusive (write)."""

    SHARED = "shared"
    EXCLUSIVE = "exclusive"


@dataclass
class GrantedLock:
    """A currently-held byte-range lock."""

    lock_id: int
    owner: int
    interval: Interval
    mode: str
    #: Virtual time at which the lock was granted.
    granted_at: float = 0.0
    #: Virtual time at which the lock was released (filled in on release).
    released_at: Optional[float] = field(default=None, compare=False)

    def conflicts_with(self, interval: Interval, mode: str, owner: int) -> bool:
        """True when a new request by ``owner`` for ``interval``/``mode``
        cannot coexist with this granted lock."""
        if owner == self.owner:
            return False
        if not self.interval.overlaps(interval):
            return False
        return self.mode == LockMode.EXCLUSIVE or mode == LockMode.EXCLUSIVE


class CentralLockManager:
    """Blocking byte-range lock manager with virtual-time accounting."""

    def __init__(self, request_latency: float = 0.0) -> None:
        if request_latency < 0:
            raise ValueError("request_latency must be non-negative")
        self.request_latency = request_latency
        self._granted: Dict[int, GrantedLock] = {}
        #: Released locks, kept so later acquisitions can be ordered after the
        #: virtual release time of conflicting locks even when the real-time
        #: race has already been resolved (see :meth:`acquire`).
        self._history: List[GrantedLock] = []
        self._cond = threading.Condition()
        self._ids = itertools.count(1)
        self._total_waits = 0

    # -- queries -----------------------------------------------------------------

    def held_locks(self) -> List[GrantedLock]:
        """Snapshot of currently granted locks."""
        with self._cond:
            return list(self._granted.values())

    @property
    def wait_count(self) -> int:
        """How many acquisitions had to wait for a conflicting lock."""
        with self._cond:
            return self._total_waits

    # -- acquisition / release ------------------------------------------------------

    def acquire(
        self,
        owner: int,
        start: int,
        stop: int,
        mode: str = LockMode.EXCLUSIVE,
        now: float = 0.0,
        timeout: Optional[float] = 60.0,
    ) -> Tuple[GrantedLock, float]:
        """Acquire a byte-range lock, blocking while conflicting locks are held.

        Parameters
        ----------
        owner:
            Requesting client id (MPI rank in this library).
        start, stop:
            Half-open byte range to lock.
        mode:
            :data:`LockMode.SHARED` or :data:`LockMode.EXCLUSIVE`.
        now:
            The requester's current virtual time.
        timeout:
            Real-time safety net in seconds.

        Returns
        -------
        (lock, grant_time):
            The granted lock and the virtual time at which it was granted —
            at least ``now + request_latency``, and no earlier than the
            virtual release time of any conflicting lock that had to be
            waited for.
        """
        if mode not in (LockMode.SHARED, LockMode.EXCLUSIVE):
            raise InvalidRequest(f"unknown lock mode {mode!r}")
        if start < 0 or stop < start:
            raise InvalidRequest(f"invalid lock range [{start}, {stop})")
        interval = Interval(start, stop)
        waited = False
        with self._cond:
            while True:
                conflicts = [
                    g for g in self._granted.values()
                    if g.conflicts_with(interval, mode, owner)
                ]
                if not conflicts:
                    break
                waited = True
                if not self._cond.wait(timeout=timeout):
                    raise TimeoutError(
                        f"lock acquisition for [{start},{stop}) by {owner} timed out"
                    )
            if waited:
                self._total_waits += 1
            # The grant cannot happen, in virtual time, before the virtual
            # release of any conflicting lock that has already been released —
            # even if, in real (thread-scheduling) time, the conflict was over
            # before this request arrived.  This is what turns lock contention
            # into virtual-time serialisation.
            prior_releases = [
                g.released_at
                for g in self._history
                if g.released_at is not None and g.conflicts_with(interval, mode, owner)
            ]
            grant_time = max([now] + prior_releases) + self.request_latency
            lock = GrantedLock(
                lock_id=next(self._ids),
                owner=owner,
                interval=interval,
                mode=mode,
                granted_at=grant_time,
            )
            self._granted[lock.lock_id] = lock
            return lock, grant_time

    def release(self, lock: GrantedLock, now: float = 0.0) -> None:
        """Release a previously granted lock at virtual time ``now``."""
        with self._cond:
            if lock.lock_id not in self._granted:
                raise LockViolation(f"lock {lock.lock_id} is not held")
            stored = self._granted.pop(lock.lock_id)
            stored.released_at = now
            # Keep the caller's object in sync so waiters polling either see it.
            lock.released_at = now
            self._history.append(stored)
            self._cond.notify_all()

    def release_all(self, owner: int, now: float = 0.0) -> int:
        """Release every lock held by ``owner``; returns how many."""
        with self._cond:
            mine = [g for g in self._granted.values() if g.owner == owner]
            for g in mine:
                del self._granted[g.lock_id]
                g.released_at = now
                self._history.append(g)
            if mine:
                self._cond.notify_all()
            return len(mine)

    def reset_history(self) -> None:
        """Forget released-lock history (between benchmark repetitions)."""
        with self._cond:
            self._history.clear()
            self._total_waits = 0
