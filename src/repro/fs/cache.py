"""Client-side file cache with read-ahead and write-behind.

Section 3 of the paper discusses how client-server file systems (NFS/ENFS in
particular) complicate overlapping I/O: read-ahead pulls more data into a
client's cache than its file view logically overlaps, and write-behind delays
the moment written data becomes visible to other clients.  The process-
handshaking strategies therefore require an explicit ``sync`` (flush) after
writes and a cache invalidation before reads of overlapped regions.

:class:`ClientCache` models exactly that behaviour:

* reads fill whole cache pages and optionally *read ahead* extra pages;
* writes are buffered (*write-behind*) until :meth:`flush` — or write through
  when the policy disables write-behind;
* :meth:`invalidate` drops clean pages so subsequent reads fetch fresh data;
* dirty pages remember exactly which bytes were written so a flush never
  writes back stale surrounding bytes (which would itself violate atomicity).

The cache talks to the rest of the file system through two callables
(``fetch`` and ``store``) so it can be unit-tested in isolation.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

__all__ = ["CachePolicy", "CacheStats", "ClientCache"]

FetchFn = Callable[[int, int], bytes]          # (offset, nbytes) -> data
StoreFn = Callable[[int, bytes], None]         # (offset, data) -> None


@dataclass(frozen=True)
class CachePolicy:
    """Tunable cache behaviour.

    Parameters
    ----------
    page_size:
        Cache page size in bytes.
    max_pages:
        Capacity; least-recently-used clean/dirty pages are evicted (dirty
        pages are written back first).
    read_ahead_pages:
        How many extra pages to prefetch past the end of a read.
    write_behind:
        Buffer writes in the cache until :meth:`ClientCache.flush` (True) or
        write through immediately (False).
    """

    page_size: int = 4096
    max_pages: int = 1024
    read_ahead_pages: int = 2
    write_behind: bool = True

    def __post_init__(self) -> None:
        if self.page_size <= 0:
            raise ValueError("page_size must be positive")
        if self.max_pages <= 0:
            raise ValueError("max_pages must be positive")
        if self.read_ahead_pages < 0:
            raise ValueError("read_ahead_pages must be non-negative")


@dataclass
class CacheStats:
    """Counters for cache behaviour (used by tests and benchmark reports)."""

    hits: int = 0
    misses: int = 0
    read_ahead_pages: int = 0
    write_backs: int = 0
    invalidations: int = 0
    evictions: int = 0


class _Page:
    """One cache page: data plus dirty- and valid-byte masks.

    ``dirty`` marks bytes written by this client and not yet flushed;
    ``valid`` marks bytes whose content is known (fetched from the server or
    written locally).  A page created by a write-allocate has only its dirty
    bytes valid, so a later read fills the remaining bytes from the server
    instead of returning zeros.
    """

    __slots__ = ("data", "dirty", "valid")

    def __init__(self, size: int) -> None:
        self.data = np.zeros(size, dtype=np.uint8)
        self.dirty = np.zeros(size, dtype=bool)
        self.valid = np.zeros(size, dtype=bool)

    @property
    def is_dirty(self) -> bool:
        return bool(self.dirty.any())

    @property
    def fully_valid(self) -> bool:
        return bool(self.valid.all())


class ClientCache:
    """Per-client page cache in front of the file system servers."""

    def __init__(self, fetch: FetchFn, store: StoreFn, policy: Optional[CachePolicy] = None) -> None:
        self._fetch = fetch
        self._store = store
        self.policy = policy or CachePolicy()
        self._pages: "OrderedDict[int, _Page]" = OrderedDict()
        self.stats = CacheStats()

    # -- helpers ------------------------------------------------------------------

    def _page_range(self, offset: int, nbytes: int) -> range:
        ps = self.policy.page_size
        first = offset // ps
        last = (offset + nbytes - 1) // ps if nbytes > 0 else first - 1
        return range(first, last + 1)

    def _touch(self, page_no: int) -> None:
        self._pages.move_to_end(page_no)

    def _evict_if_needed(self) -> None:
        while len(self._pages) > self.policy.max_pages:
            victim_no, victim = next(iter(self._pages.items()))
            if victim.is_dirty:
                self._write_back(victim_no, victim)
            del self._pages[victim_no]
            self.stats.evictions += 1

    @staticmethod
    def _dirty_runs(mask: np.ndarray) -> List[Tuple[int, int]]:
        """Maximal ``[start, stop)`` runs of True values in a boolean mask."""
        if not mask.any():
            return []
        padded = np.empty(mask.shape[0] + 2, dtype=np.int8)
        padded[0] = padded[-1] = 0
        padded[1:-1] = mask
        edges = np.flatnonzero(np.diff(padded))
        return [(int(edges[i]), int(edges[i + 1])) for i in range(0, len(edges), 2)]

    def _write_back(self, page_no: int, page: _Page) -> None:
        """Write the dirty byte runs of a page to the server."""
        base = page_no * self.policy.page_size
        for start, stop in self._dirty_runs(page.dirty):
            self._store(base + start, page.data[start:stop].tobytes())
            self.stats.write_backs += 1
        page.dirty[:] = False

    def _fill_from_server(self, page_no: int, page: _Page) -> None:
        """Fetch the page from the server and fill its not-yet-valid bytes
        (locally written bytes are never overwritten)."""
        ps = self.policy.page_size
        data = self._fetch(page_no * ps, ps)
        fresh = np.zeros(ps, dtype=np.uint8)
        fresh[: len(data)] = np.frombuffer(data, dtype=np.uint8)
        missing = ~page.valid
        page.data[missing] = fresh[missing]
        page.valid[:] = True

    def _load_page(self, page_no: int) -> _Page:
        ps = self.policy.page_size
        page = self._pages.get(page_no)
        if page is not None:
            self._touch(page_no)
            if page.fully_valid:
                self.stats.hits += 1
            else:
                # Write-allocated page being read: fill the holes from the server.
                self.stats.misses += 1
                self._fill_from_server(page_no, page)
            return page
        self.stats.misses += 1
        page = _Page(ps)
        self._fill_from_server(page_no, page)
        self._pages[page_no] = page
        # Read ahead subsequent pages that are not yet cached.
        for ahead in range(1, self.policy.read_ahead_pages + 1):
            nxt = page_no + ahead
            if nxt in self._pages:
                continue
            ahead_page = _Page(ps)
            self._fill_from_server(nxt, ahead_page)
            self._pages[nxt] = ahead_page
            self.stats.read_ahead_pages += 1
        self._evict_if_needed()
        return page

    # -- public API ------------------------------------------------------------------

    def read(self, offset: int, nbytes: int) -> bytes:
        """Read through the cache (filling pages and reading ahead)."""
        if offset < 0 or nbytes < 0:
            raise ValueError("offset and nbytes must be non-negative")
        if nbytes == 0:
            return b""
        ps = self.policy.page_size
        out = np.zeros(nbytes, dtype=np.uint8)
        for page_no in self._page_range(offset, nbytes):
            page = self._load_page(page_no)
            base = page_no * ps
            lo = max(offset, base)
            hi = min(offset + nbytes, base + ps)
            out[lo - offset : hi - offset] = page.data[lo - base : hi - base]
        return out.tobytes()

    def write(self, offset: int, data: bytes) -> None:
        """Write through or behind, per the cache policy."""
        if offset < 0:
            raise ValueError("offset must be non-negative")
        if not data:
            return
        if not self.policy.write_behind:
            self._store(offset, data)
            # Keep any cached copies coherent with what was just stored.
            self._update_cached(offset, data, mark_dirty=False)
            return
        self._update_cached(offset, data, mark_dirty=True, create_missing=True)
        self._evict_if_needed()

    def _update_cached(
        self, offset: int, data: bytes, mark_dirty: bool, create_missing: bool = False
    ) -> None:
        ps = self.policy.page_size
        buf = np.frombuffer(data, dtype=np.uint8)
        for page_no in self._page_range(offset, len(data)):
            page = self._pages.get(page_no)
            if page is None:
                if not create_missing:
                    continue
                # Write-allocate without fetching: only the dirty bytes are
                # meaningful and only they will ever be written back.
                page = _Page(ps)
                self._pages[page_no] = page
            else:
                self._touch(page_no)
            base = page_no * ps
            lo = max(offset, base)
            hi = min(offset + len(data), base + ps)
            page.data[lo - base : hi - base] = buf[lo - offset : hi - offset]
            page.valid[lo - base : hi - base] = True
            if mark_dirty:
                page.dirty[lo - base : hi - base] = True

    def flush(self) -> int:
        """Write back every dirty page; returns the number of dirty pages flushed.

        This is the client-side half of the ``MPI_File_sync`` the paper's
        handshaking strategies must issue after their writes.  Dirty byte
        runs that are contiguous in the file — even across page boundaries —
        are gathered into a single server write, which is exactly the request
        coalescing a write-behind policy exists to provide.
        """
        ps = self.policy.page_size
        dirty_pages = sorted(
            (page_no, page) for page_no, page in self._pages.items() if page.is_dirty
        )
        flushed = len(dirty_pages)
        run_start: Optional[int] = None
        run_data: List[bytes] = []
        run_end = -1

        def emit() -> None:
            if run_start is not None and run_data:
                self._store(run_start, b"".join(run_data))
                self.stats.write_backs += 1

        for page_no, page in dirty_pages:
            base = page_no * ps
            for i, j in self._dirty_runs(page.dirty):
                abs_start = base + i
                if run_start is not None and abs_start == run_end:
                    run_data.append(page.data[i:j].tobytes())
                else:
                    emit()
                    run_start = abs_start
                    run_data = [page.data[i:j].tobytes()]
                run_end = base + j
            page.dirty[:] = False
        emit()
        return flushed

    def invalidate(self) -> None:
        """Drop all clean pages (dirty pages are flushed first).

        The other half of the handshaking protocol: before reading a region
        another process may have just written, the stale cached copy must go.
        """
        self.flush()
        self.stats.invalidations += 1
        self._pages.clear()

    @property
    def cached_pages(self) -> int:
        """Number of pages currently resident."""
        return len(self._pages)

    def dirty_bytes(self) -> int:
        """Total bytes currently dirty in the cache."""
        return int(sum(p.dirty.sum() for p in self._pages.values()))
