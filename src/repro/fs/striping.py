"""File striping across I/O servers.

Parallel file systems such as GPFS and XFS-backed clusters spread a file's
bytes round-robin across a set of I/O servers in fixed-size *stripe units*.
The layout matters to the performance model: a single client writing a large
contiguous range can drive several servers at once, while many clients
writing disjoint ranges share the servers' aggregate bandwidth.

:class:`StripingLayout` maps byte ranges to per-server chunks.  A layout with
``num_servers == 1`` degenerates to an unstriped (NFS-like) file, which is
how the ENFS personality is configured.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Tuple

__all__ = ["StripeChunk", "StripingLayout"]


@dataclass(frozen=True)
class StripeChunk:
    """A contiguous piece of a request that lands on a single server."""

    server: int
    offset: int     # file offset of the chunk
    length: int     # bytes in the chunk


@dataclass(frozen=True)
class StripingLayout:
    """Round-robin striping of a file across ``num_servers`` servers.

    Parameters
    ----------
    num_servers:
        Number of I/O servers holding the file.
    stripe_size:
        Stripe unit in bytes; offset ``o`` lives on server
        ``(o // stripe_size) % num_servers``.
    """

    num_servers: int
    stripe_size: int

    def __post_init__(self) -> None:
        if self.num_servers <= 0:
            raise ValueError("num_servers must be positive")
        if self.stripe_size <= 0:
            raise ValueError("stripe_size must be positive")

    def server_of(self, offset: int) -> int:
        """Server index holding byte ``offset``."""
        if offset < 0:
            raise ValueError("offset must be non-negative")
        return (offset // self.stripe_size) % self.num_servers

    def chunks(self, offset: int, nbytes: int) -> Iterator[StripeChunk]:
        """Split ``[offset, offset + nbytes)`` into per-server chunks in
        file-offset order."""
        if offset < 0 or nbytes < 0:
            raise ValueError("offset and nbytes must be non-negative")
        pos = offset
        remaining = nbytes
        while remaining > 0:
            within = pos % self.stripe_size
            take = min(self.stripe_size - within, remaining)
            yield StripeChunk(server=self.server_of(pos), offset=pos, length=take)
            pos += take
            remaining -= take

    def bytes_per_server(self, offset: int, nbytes: int) -> Dict[int, int]:
        """Total bytes of the range stored on each server."""
        out: Dict[int, int] = {}
        for chunk in self.chunks(offset, nbytes):
            out[chunk.server] = out.get(chunk.server, 0) + chunk.length
        return out

    def servers_touched(self, offset: int, nbytes: int) -> List[int]:
        """Sorted list of servers the range touches."""
        return sorted(self.bytes_per_server(offset, nbytes))
