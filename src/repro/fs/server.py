"""I/O server model.

An :class:`IOServer` is one storage target of the parallel file system.  It
is purely a *performance* entity: the actual bytes live in the shared
:class:`~repro.fs.storage.ByteStore` of the file (so correctness does not
depend on the striping arithmetic), while the server tracks virtual-time
occupancy through a :class:`~repro.fs.costmodel.Resource` so concurrent
clients share its bandwidth and queue behind one another.
"""

from __future__ import annotations

from typing import List

from .costmodel import CostModel, Resource

__all__ = ["IOServer", "ServerPool"]


class IOServer:
    """A single I/O server with latency/bandwidth limits."""

    def __init__(self, index: int, cost: CostModel) -> None:
        self.index = index
        self.resource = Resource(f"ioserver-{index}", cost)

    def transfer(self, start: float, nbytes: int) -> float:
        """Charge a transfer of ``nbytes`` beginning no earlier than
        ``start``; returns the virtual completion time."""
        return self.resource.reserve(start, nbytes)

    @property
    def busy_time(self) -> float:
        """Accumulated virtual busy time."""
        return self.resource.busy_time

    @property
    def request_count(self) -> int:
        """Number of transfers served."""
        return self.resource.request_count

    def reset(self) -> None:
        """Clear virtual-time accounting."""
        self.resource.reset()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"IOServer({self.index})"


class ServerPool:
    """The set of I/O servers backing a file system."""

    def __init__(self, num_servers: int, cost: CostModel) -> None:
        if num_servers <= 0:
            raise ValueError("num_servers must be positive")
        self.servers: List[IOServer] = [IOServer(i, cost) for i in range(num_servers)]

    def __len__(self) -> int:
        return len(self.servers)

    def __getitem__(self, index: int) -> IOServer:
        return self.servers[index]

    def aggregate_busy_time(self) -> float:
        """Sum of busy time over all servers."""
        return sum(s.busy_time for s in self.servers)

    def total_requests(self) -> int:
        """Total number of transfers served by the pool."""
        return sum(s.request_count for s in self.servers)

    def reset(self) -> None:
        """Clear accounting on every server."""
        for s in self.servers:
            s.reset()
