"""The parallel file system facade.

:class:`ParallelFileSystem` ties the substrate together: a pool of I/O
servers (:mod:`repro.fs.server`), a striping layout (:mod:`repro.fs.striping`),
a byte-range lock service (central or token-based, or none at all for the
ENFS personality), and one :class:`FileObject` per file holding the shared
:class:`~repro.fs.storage.ByteStore`.

Semantics follow the POSIX model the paper assumes of its platforms
(Section 2.1): every *single* read or write call is atomic — implemented by
the ``ByteStore`` applying each update under a lock — while no ordering or
atomicity is promised across calls.  MPI atomic mode must therefore be built
*on top*, which is exactly what :mod:`repro.core.strategies` does.

Per-process access goes through :class:`repro.fs.client.FSClient`, which adds
the client cache and virtual-time charging.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Dict, Optional, Union

from .cache import CachePolicy
from .costmodel import CostModel
from .errors import FileExists, FileNotFound, LockingUnsupported
from .lockmanager import CentralLockManager
from .server import ServerPool
from .storage import ByteStore
from .striping import StripingLayout
from .tokens import DistributedLockManager

__all__ = ["LockProtocol", "FSConfig", "FileObject", "ParallelFileSystem"]

LockManager = Union[CentralLockManager, DistributedLockManager]


class LockProtocol:
    """Which byte-range locking service a file system personality offers."""

    NONE = "none"            # ENFS / Cplant: no file locking available
    CENTRAL = "central"      # NFS / XFS style central lock manager
    DISTRIBUTED = "distributed"  # GPFS style token-based locking


@dataclass(frozen=True)
class FSConfig:
    """Configuration of a file system personality.

    The presets in :mod:`repro.fs.presets` build these for ENFS, XFS and
    GPFS; tests build small custom ones.
    """

    name: str = "generic"
    num_servers: int = 4
    stripe_size: int = 64 * 1024
    #: Per-server service model (disk + server CPU + its network port).
    server_cost: CostModel = field(default_factory=lambda: CostModel(latency=0.0005, bandwidth=100e6))
    #: Per-client injection link (compute-node NIC / memory path).
    client_link_cost: CostModel = field(default_factory=lambda: CostModel(latency=0.0001, bandwidth=200e6))
    lock_protocol: str = LockProtocol.CENTRAL
    lock_request_latency: float = 0.0005
    token_acquire_latency: float = 0.001
    token_revoke_latency: float = 0.0005
    token_local_latency: float = 0.00005
    cache_policy: CachePolicy = field(default_factory=CachePolicy)
    #: Whether client caches are used at all (the paper's discussion of
    #: read-ahead/write-behind applies to ENFS-like systems).
    client_caching: bool = True

    def supports_locking(self) -> bool:
        """True when byte-range locking is available."""
        return self.lock_protocol != LockProtocol.NONE


class FileObject:
    """Server-side state of one file: bytes, size, striping, lock service."""

    def __init__(self, name: str, fs: "ParallelFileSystem") -> None:
        self.name = name
        self.fs = fs
        self.store = ByteStore()
        self.layout = StripingLayout(
            num_servers=fs.config.num_servers, stripe_size=fs.config.stripe_size
        )
        self.lock_manager: Optional[LockManager] = fs._make_lock_manager()
        self.open_count = 0

    # -- data path (server side, no cost accounting) ---------------------------

    def server_write(self, offset: int, data: bytes, writer: int) -> int:
        """Apply one POSIX-atomic write to the backing store."""
        return self.store.write(offset, data, writer=writer)

    def server_read(self, offset: int, nbytes: int) -> bytes:
        """Apply one POSIX-atomic read from the backing store."""
        return self.store.read(offset, nbytes)

    @property
    def size(self) -> int:
        """Current file size in bytes."""
        return self.store.size

    def require_lock_manager(self) -> LockManager:
        """The file's lock manager, or raise if the FS has no locking."""
        if self.lock_manager is None:
            raise LockingUnsupported(
                f"file system {self.fs.config.name!r} provides no byte-range locking"
            )
        return self.lock_manager


class ParallelFileSystem:
    """A complete file system instance (servers + files + lock service)."""

    def __init__(self, config: Optional[FSConfig] = None) -> None:
        self.config = config or FSConfig()
        self.servers = ServerPool(self.config.num_servers, self.config.server_cost)
        self._files: Dict[str, FileObject] = {}
        self._lock = threading.Lock()

    # -- lock manager factory ------------------------------------------------------

    def _make_lock_manager(self) -> Optional[LockManager]:
        proto = self.config.lock_protocol
        if proto == LockProtocol.NONE:
            return None
        if proto == LockProtocol.CENTRAL:
            return CentralLockManager(request_latency=self.config.lock_request_latency)
        if proto == LockProtocol.DISTRIBUTED:
            return DistributedLockManager(
                acquire_latency=self.config.token_acquire_latency,
                revoke_latency=self.config.token_revoke_latency,
                local_latency=self.config.token_local_latency,
            )
        raise ValueError(f"unknown lock protocol {proto!r}")

    # -- namespace operations ---------------------------------------------------------

    def create(self, name: str, exist_ok: bool = True) -> FileObject:
        """Create a file (idempotent unless ``exist_ok=False``)."""
        with self._lock:
            if name in self._files:
                if not exist_ok:
                    raise FileExists(name)
                return self._files[name]
            f = FileObject(name, self)
            self._files[name] = f
            return f

    def lookup(self, name: str) -> FileObject:
        """Find an existing file."""
        with self._lock:
            try:
                return self._files[name]
            except KeyError:
                raise FileNotFound(name) from None

    def exists(self, name: str) -> bool:
        """True when the file exists."""
        with self._lock:
            return name in self._files

    def unlink(self, name: str) -> None:
        """Remove a file."""
        with self._lock:
            if name not in self._files:
                raise FileNotFound(name)
            del self._files[name]

    def list_files(self) -> list:
        """Names of all files, sorted."""
        with self._lock:
            return sorted(self._files)

    def reset_accounting(self) -> None:
        """Clear virtual-time accounting on servers and lock managers
        (between benchmark repetitions)."""
        self.servers.reset()
        with self._lock:
            for f in self._files.values():
                lm = f.lock_manager
                if lm is not None:
                    lm.reset_history()
