"""File system personalities for the paper's three platforms (Table 1).

These presets parameterise the generic substrate so that each personality
reproduces the *behavioural* traits that matter to the experiments:

``ENFS`` (ASCI Cplant, Sandia)
    NFS with extensions; **no byte-range file locking** (the paper could not
    run the locking strategy there), aggressive read-ahead / write-behind
    client caching, and a single server handling a given shared file, so
    aggregate bandwidth is low (Table 1 lists a 50 MB/s peak).

``XFS`` (SGI Origin 2000, NCSA)
    A high-bandwidth shared-memory machine (4 GB/s peak I/O); byte-range
    locking through a central lock manager.

``GPFS`` (IBM SP "Blue Horizon", SDSC)
    12 I/O servers, 1.5 GB/s peak, and GPFS's **distributed token-based**
    lock manager.

Absolute bandwidth values are scaled-down stand-ins (the real machines are
long gone); what the benchmarks depend on is the *relationships* — per-client
link ≪ aggregate server bandwidth, locking latency ≫ local token reuse — and
those are encoded here.
"""

from __future__ import annotations

from .cache import CachePolicy
from .costmodel import CostModel
from .filesystem import FSConfig, LockProtocol

__all__ = ["enfs_config", "xfs_config", "gpfs_config", "preset", "PRESET_NAMES"]


def enfs_config() -> FSConfig:
    """Extended NFS as on ASCI Cplant: no locking, strong client caching."""
    return FSConfig(
        name="ENFS",
        # A shared file lives on one NFS server; other servers don't help it.
        num_servers=1,
        stripe_size=64 * 1024,
        server_cost=CostModel(latency=0.0008, bandwidth=50e6),
        client_link_cost=CostModel(latency=0.0003, bandwidth=30e6),
        lock_protocol=LockProtocol.NONE,
        cache_policy=CachePolicy(
            page_size=64 * 1024, max_pages=2048, read_ahead_pages=4, write_behind=True
        ),
        client_caching=True,
    )


def xfs_config() -> FSConfig:
    """SGI XFS on the Origin 2000: central locking, high aggregate bandwidth."""
    return FSConfig(
        name="XFS",
        num_servers=8,
        stripe_size=256 * 1024,
        server_cost=CostModel(latency=0.00005, bandwidth=500e6),
        client_link_cost=CostModel(latency=0.00005, bandwidth=250e6),
        lock_protocol=LockProtocol.CENTRAL,
        lock_request_latency=0.0008,
        cache_policy=CachePolicy(
            page_size=256 * 1024, max_pages=1024, read_ahead_pages=2, write_behind=True
        ),
        client_caching=True,
    )


def gpfs_config() -> FSConfig:
    """IBM GPFS on the SP: 12 servers, distributed token-based locking."""
    return FSConfig(
        name="GPFS",
        num_servers=12,
        stripe_size=256 * 1024,
        server_cost=CostModel(latency=0.00015, bandwidth=125e6),
        client_link_cost=CostModel(latency=0.0001, bandwidth=120e6),
        lock_protocol=LockProtocol.DISTRIBUTED,
        token_acquire_latency=0.0015,
        token_revoke_latency=0.0008,
        token_local_latency=0.00005,
        cache_policy=CachePolicy(
            page_size=256 * 1024, max_pages=1024, read_ahead_pages=2, write_behind=True
        ),
        client_caching=True,
    )


PRESET_NAMES = ("ENFS", "XFS", "GPFS")

_FACTORIES = {
    "ENFS": enfs_config,
    "XFS": xfs_config,
    "GPFS": gpfs_config,
}


def preset(name: str) -> FSConfig:
    """Look up a personality by name (case-insensitive)."""
    try:
        return _FACTORIES[name.upper()]()
    except KeyError:
        raise KeyError(f"unknown file system preset {name!r}; known: {PRESET_NAMES}") from None
