"""repro — Scalable Implementations of MPI Atomicity for Concurrent Overlapping I/O.

A complete Python reproduction of Liao et al., ICPP 2003: the three MPI
atomicity strategies (byte-range file locking, graph-coloring handshaking and
process-rank ordering) plus every substrate they need — an MPI runtime
simulator, a derived-datatype engine, an MPI-IO layer, and a parallel file
system with caching, striping, central and distributed byte-range locking and
a virtual-time performance model.

Typical use::

    from repro import (
        ParallelFileSystem, xfs_config, AtomicWriteExecutor,
        RankOrderingStrategy, column_wise_views, check_mpi_atomicity,
    )

    fs = ParallelFileSystem(xfs_config())
    views = column_wise_views(M=64, N=1024, P=4, R=4)
    executor = AtomicWriteExecutor(fs, RankOrderingStrategy(), "ckpt.dat")
    result = executor.run(4, lambda rank, P: views[rank])
    report = check_mpi_atomicity(result.file.store, result.regions)
    assert report.ok
"""

from .core import (
    AtomicityStrategy,
    AtomicWriteExecutor,
    CollectiveReadExecutor,
    ColumnWiseCase,
    ConcurrentReadResult,
    ConcurrentWriteResult,
    FileRegionSet,
    GraphColoringStrategy,
    Interval,
    IntervalSet,
    LockingStrategy,
    NoAtomicityStrategy,
    OverlapMatrix,
    PipelineStrategy,
    RankOrderingStrategy,
    ReadOutcome,
    STRATEGY_NAMES,
    TwoPhaseStrategy,
    WriteOutcome,
    build_overlap_matrix,
    default_registry,
    estimate_column_wise,
    greedy_coloring,
    register_strategy,
    resolve_by_rank,
    strategy_by_name,
)
from .fs import (
    FSClient,
    FSConfig,
    LockProtocol,
    ParallelFileSystem,
    enfs_config,
    gpfs_config,
    preset,
    xfs_config,
)
from .io import (
    Info,
    IORequest,
    MODE_CREATE,
    MODE_RDWR,
    MODE_WRONLY,
    MPIFile,
    Testall,
    Waitall,
    Waitany,
)
from .mpi import Communicator, Group, Intercomm, run_spmd
from .pipelines import (
    CoupledPipeline,
    PipelineResult,
    PipelineSpec,
    StageSpec,
    expected_consumer_streams,
)
from .patterns import (
    CheckpointRestartWorkload,
    ColumnWiseWorkload,
    GhostDecomposition,
    block_block_views,
    column_wise_views,
    row_wise_views,
)
from .verify import (
    ReadObservation,
    check_coverage,
    check_mpi_atomicity,
    check_read_atomicity,
)
from .bench import (
    run_column_wise_experiment,
    run_figure8_grid,
    run_mixed_experiment,
    run_read_experiment,
    run_read_sweep,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # core
    "AtomicityStrategy",
    "PipelineStrategy",
    "NoAtomicityStrategy",
    "LockingStrategy",
    "GraphColoringStrategy",
    "RankOrderingStrategy",
    "TwoPhaseStrategy",
    "strategy_by_name",
    "STRATEGY_NAMES",
    "default_registry",
    "register_strategy",
    "AtomicWriteExecutor",
    "ConcurrentWriteResult",
    "CollectiveReadExecutor",
    "ConcurrentReadResult",
    "WriteOutcome",
    "ReadOutcome",
    "FileRegionSet",
    "Interval",
    "IntervalSet",
    "OverlapMatrix",
    "build_overlap_matrix",
    "greedy_coloring",
    "resolve_by_rank",
    "ColumnWiseCase",
    "estimate_column_wise",
    # fs
    "ParallelFileSystem",
    "FSConfig",
    "LockProtocol",
    "FSClient",
    "enfs_config",
    "xfs_config",
    "gpfs_config",
    "preset",
    # io
    "MPIFile",
    "Info",
    "IORequest",
    "Waitall",
    "Testall",
    "Waitany",
    "MODE_CREATE",
    "MODE_RDWR",
    "MODE_WRONLY",
    # mpi
    "Communicator",
    "Group",
    "Intercomm",
    "run_spmd",
    # pipelines
    "StageSpec",
    "PipelineSpec",
    "CoupledPipeline",
    "PipelineResult",
    "expected_consumer_streams",
    # patterns
    "column_wise_views",
    "row_wise_views",
    "block_block_views",
    "GhostDecomposition",
    "ColumnWiseWorkload",
    "CheckpointRestartWorkload",
    # verify
    "check_mpi_atomicity",
    "check_coverage",
    "check_read_atomicity",
    "ReadObservation",
    # bench
    "run_column_wise_experiment",
    "run_figure8_grid",
    "run_read_experiment",
    "run_read_sweep",
    "run_mixed_experiment",
]
