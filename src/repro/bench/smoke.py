"""Fast benchmark smoke check for CI.

Runs one Figure 8 grid point per registered atomicity-providing strategy
(including ``two-phase``) on a lock-capable machine personality, verifies
MPI atomicity on every point, and exits non-zero on any violation.  The row
scale is aggressive so the whole check takes a couple of seconds.

Run with::

    PYTHONPATH=src python -m repro.bench.smoke
"""

from __future__ import annotations

import sys
from typing import Optional, Sequence

from ..core.registry import default_registry
from .harness import run_figure8_grid

__all__ = ["run_smoke", "main"]

#: Grid point the smoke check measures.
SMOKE_MACHINE = "Origin 2000"
SMOKE_LABEL = "32MB"
SMOKE_NPROCS = 4
SMOKE_ROW_SCALE = 256


def run_smoke(pattern: str = "column-wise"):
    """One grid point per registered atomic strategy; returns the table."""
    return run_figure8_grid(
        machines=[SMOKE_MACHINE],
        array_labels=[SMOKE_LABEL],
        process_counts=[SMOKE_NPROCS],
        strategies=default_registry.atomic_names(),
        row_scale=SMOKE_ROW_SCALE,
        verify=True,
        pattern=pattern,
    )


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point: print the smoke table, fail on atomicity violations."""
    patterns = list(argv) if argv else ["column-wise"]
    failed = False
    for pattern in patterns:
        table = run_smoke(pattern=pattern)
        print(table.to_text(title=f"Benchmark smoke ({pattern})"))
        expected = set(default_registry.atomic_names())
        measured = {r.strategy for r in table}
        if measured != expected:
            print(f"FAIL: expected strategies {sorted(expected)}, measured {sorted(measured)}")
            failed = True
        for record in table:
            if not record.atomic_ok:
                print(f"FAIL: atomicity violated for strategy {record.strategy!r}")
                failed = True
    if failed:
        return 1
    print("smoke ok: every strategy point verified MPI-atomic")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via CI
    sys.exit(main(sys.argv[1:]))
