"""Fast benchmark smoke checks for CI.

Two checks share this entry point:

* **Atomicity smoke** (default): one Figure 8 grid point per registered
  atomicity-providing strategy (including ``two-phase``) on a lock-capable
  machine personality, MPI atomicity verified on every point, non-zero exit
  on any violation.  The row scale is aggressive so the whole check takes a
  couple of seconds.
* **Scalability smoke** (``--scale RANKS [BUDGET_SECONDS]``): one 512-rank
  (by default) column-wise atomic write under the two-phase strategy, end to
  end with verification, under a *hard wall-clock budget* — a performance
  regression in the event-driven SPMD kernel fails the build rather than
  silently making every sweep slower.

Run with::

    PYTHONPATH=src python -m repro.bench.smoke
    PYTHONPATH=src python -m repro.bench.smoke --scale 512 60
"""

from __future__ import annotations

import sys
import time
from typing import Optional, Sequence

from ..core.registry import default_registry
from .harness import run_column_wise_experiment, run_figure8_grid

__all__ = ["run_smoke", "run_scalability_smoke", "main"]

#: Scalability smoke workload: rows x columns of the column-wise array.
SCALE_M = 16
SCALE_N = 16384
#: Default hard wall-clock budget for the scalability smoke (seconds).  The
#: measured point takes ~2-4s on a laptop; the budget allows for slow CI
#: runners while still catching order-of-magnitude scheduler regressions.
SCALE_BUDGET_SECONDS = 60.0

#: Grid point the smoke check measures.
SMOKE_MACHINE = "Origin 2000"
SMOKE_LABEL = "32MB"
SMOKE_NPROCS = 4
SMOKE_ROW_SCALE = 256


def run_smoke(pattern: str = "column-wise"):
    """One grid point per registered atomic strategy; returns the table."""
    return run_figure8_grid(
        machines=[SMOKE_MACHINE],
        array_labels=[SMOKE_LABEL],
        process_counts=[SMOKE_NPROCS],
        strategies=default_registry.atomic_names(),
        row_scale=SMOKE_ROW_SCALE,
        verify=True,
        pattern=pattern,
    )


def run_scalability_smoke(
    nprocs: int = 512, budget_seconds: float = SCALE_BUDGET_SECONDS
) -> int:
    """Run a ``nprocs``-rank two-phase write under a hard wall-clock budget.

    Returns a process exit code: non-zero when the write exceeds the budget,
    violates atomicity, or fails outright.
    """
    t0 = time.perf_counter()
    record = run_column_wise_experiment(
        "IBM SP", SCALE_M, SCALE_N, nprocs, "two-phase", verify=True
    )
    wall = time.perf_counter() - t0
    print(
        f"scalability smoke: {nprocs}-rank two-phase column-wise write "
        f"({SCALE_M}x{SCALE_N}) in {wall:.2f}s wall "
        f"(budget {budget_seconds:.0f}s), virtual makespan "
        f"{record.makespan_seconds:.4f}s, atomic="
        f"{'yes' if record.atomic_ok else 'NO'}"
    )
    if not record.atomic_ok:
        print("FAIL: atomicity violated")
        return 1
    if wall > budget_seconds:
        print(
            f"FAIL: wall clock {wall:.2f}s exceeded the {budget_seconds:.0f}s "
            "budget — the event kernel's scalability regressed"
        )
        return 1
    print("scalability smoke ok")
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point: print the smoke table, fail on atomicity violations.

    ``--scale RANKS [BUDGET_SECONDS]`` selects the scalability smoke
    instead; any other arguments are treated as partition pattern names for
    the atomicity smoke.
    """
    args = list(argv) if argv else []
    if args and args[0] == "--scale":
        nprocs = int(args[1]) if len(args) > 1 else 512
        budget = float(args[2]) if len(args) > 2 else SCALE_BUDGET_SECONDS
        return run_scalability_smoke(nprocs, budget)
    patterns = args or ["column-wise"]
    failed = False
    for pattern in patterns:
        table = run_smoke(pattern=pattern)
        print(table.to_text(title=f"Benchmark smoke ({pattern})"))
        expected = set(default_registry.atomic_names())
        measured = {r.strategy for r in table}
        if measured != expected:
            print(f"FAIL: expected strategies {sorted(expected)}, measured {sorted(measured)}")
            failed = True
        for record in table:
            if not record.atomic_ok:
                print(f"FAIL: atomicity violated for strategy {record.strategy!r}")
                failed = True
    if failed:
        return 1
    print("smoke ok: every strategy point verified MPI-atomic")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via CI
    sys.exit(main(sys.argv[1:]))
