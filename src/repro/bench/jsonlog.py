"""Machine-readable benchmark results (``benchmarks/results/latest.json``).

The text report (``benchmarks/results/latest.txt``) is for humans; this
module keeps the same results as JSON so the performance trajectory is
trackable across PRs and checkable by tooling (the CI perf-regression gate,
:mod:`repro.bench.perfgate`).  Both files are *generated artifacts*: they
live in a gitignored location and are uploaded from CI, never committed.

Schema (version 1)::

    {
      "schema": 1,
      "experiments": {
        "<experiment name>": [
          {"P": <ranks>, "strategy": "<name>", "makespan": <seconds>, "bytes": <requested>},
          ...
        ]
      }
    }

``makespan`` is virtual time (deterministic run to run), ``bytes`` the
requested I/O volume of the measured operation.  Entries may additionally
carry ``wall_seconds`` (measured host run time of the point — machine
dependent, unlike the makespan) and ``ops`` (the simulated operation count,
ranks × phases), from which the wall-clock perf gate derives the
per-simulated-op cost.  Points run under the adaptive ``auto`` strategy also
record ``selected`` (the concrete delegate the tuner dispatched to) and the
derived ``cb_nodes`` / ``cb_ppn`` / ``cb_buffer_size`` hints (read points
also record ``read_ahead``, the tuner's client-cache coupling).  Multi-tenant
points (:mod:`repro.bench.multitenant`) may carry ``job_id`` (which job of
the run the entry describes; summary rows omit it), ``offered_load`` (total
bytes offered across the run's jobs) and ``fairness`` (Jain's index over the
per-job makespans); all three are optional, so records written before the
job layer existed still parse.  Coupled-pipeline points
(:mod:`repro.bench.pipeline`) may carry ``stage`` (which pipeline stage —
``producer``/``transformer``/``consumer`` — a per-stage row describes) and
``stream_id`` (which per-step byte stream a per-stream row verifies); both
are optional strings, so records written before the pipeline subsystem
existed still parse.  Like the text report,
re-recording an experiment replaces its previous entries in place, so the
file holds exactly one copy of every experiment regardless of how often or
how partially the benchmarks are re-run.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Dict, Iterable, List, Optional

__all__ = [
    "SCHEMA_VERSION",
    "results_dir",
    "record_results",
    "entries_from_records",
    "load_results",
]

SCHEMA_VERSION = 1

#: Default location, relative to the repository root (the working directory
#: pytest and the CI steps run from).
DEFAULT_RESULTS_DIR = Path("benchmarks") / "results"


def results_dir() -> Path:
    """Where generated results go (override with ``REPRO_RESULTS_DIR``)."""
    env = os.environ.get("REPRO_RESULTS_DIR")
    return Path(env) if env else DEFAULT_RESULTS_DIR


def _coerce(entry: Dict) -> Dict:
    out = {
        "P": int(entry["P"]),
        "strategy": str(entry["strategy"]),
        "makespan": float(entry["makespan"]),
        "bytes": int(entry["bytes"]),
    }
    # Wall-clock fields are optional (machine-dependent, unlike the virtual
    # makespan): `wall_seconds` is the measured host run time of the point,
    # `ops` the simulated operation count it covers (ranks × phases), so
    # wall_seconds / ops is the gateable per-simulated-op cost.
    if entry.get("wall_seconds") is not None:
        out["wall_seconds"] = float(entry["wall_seconds"])
    if entry.get("ops") is not None:
        out["ops"] = int(entry["ops"])
    # Adaptive-strategy fields are optional: `selected` is the concrete
    # delegate the `auto` tuner dispatched to, the `cb_*` values the hints it
    # derived for that point.  Static strategies carry none of them.
    if entry.get("selected") is not None:
        out["selected"] = str(entry["selected"])
    for key in ("cb_nodes", "cb_ppn", "cb_buffer_size"):
        if entry.get(key) is not None:
            out[key] = int(entry[key])
    # Read-side decisions additionally record the client read-ahead coupling
    # (0/1) the tuner chose for the point.
    if entry.get("read_ahead") is not None:
        out["read_ahead"] = int(entry["read_ahead"])
    # Multi-tenant fields are optional: `job_id` names which job of a
    # multi-tenant run the entry describes (summary rows omit it),
    # `offered_load` the total bytes offered across the run's jobs, and
    # `fairness` Jain's index over the per-job makespans.
    if entry.get("job_id") is not None:
        out["job_id"] = str(entry["job_id"])
    if entry.get("offered_load") is not None:
        out["offered_load"] = float(entry["offered_load"])
    if entry.get("fairness") is not None:
        out["fairness"] = float(entry["fairness"])
    # Coupled-pipeline fields are optional: `stage` names which stage group
    # a per-stage row describes, `stream_id` which per-step byte stream a
    # per-stream row verifies.
    if entry.get("stage") is not None:
        out["stage"] = str(entry["stage"])
    if entry.get("stream_id") is not None:
        out["stream_id"] = str(entry["stream_id"])
    return out


def entries_from_records(records: Iterable) -> List[Dict]:
    """Flatten :class:`~repro.bench.results.ExperimentRecord` rows to entries."""
    entries: List[Dict] = []
    for record in records:
        entry = {
            "P": record.nprocs,
            "strategy": record.strategy,
            "makespan": record.makespan_seconds,
            "bytes": record.bytes_requested,
        }
        wall = getattr(record, "extra", {}).get("wall_seconds")
        if wall is not None:
            entry["wall_seconds"] = float(wall)
            entry["ops"] = record.nprocs * max(1, record.phases)
        selected = getattr(record, "selected_strategy", None)
        if selected is not None:
            entry["selected"] = selected
        for key in ("cb_nodes", "cb_ppn", "cb_buffer_size", "read_ahead"):
            value = getattr(record, "extra", {}).get(key)
            if value is not None:
                entry[key] = int(value)
        entries.append(entry)
    return entries


def load_results(path: Optional[Path] = None) -> Dict:
    """Load a results document (an empty schema-1 skeleton when absent)."""
    path = path or results_dir() / "latest.json"
    doc: Dict = {"schema": SCHEMA_VERSION, "experiments": {}}
    if path.exists():
        try:
            loaded = json.loads(path.read_text(encoding="utf-8"))
        except ValueError:
            return doc
        if isinstance(loaded, dict):
            doc.update(loaded)
            doc.setdefault("experiments", {})
    return doc


def record_results(
    experiment: str, entries: Iterable[Dict], path: Optional[Path] = None
) -> Path:
    """Merge one experiment's entries into ``latest.json``; returns the path."""
    path = path or results_dir() / "latest.json"
    path.parent.mkdir(parents=True, exist_ok=True)
    doc = load_results(path)
    doc["schema"] = SCHEMA_VERSION
    doc["experiments"][experiment] = [_coerce(e) for e in entries]
    path.write_text(
        json.dumps(doc, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    return path
