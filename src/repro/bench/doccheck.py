"""Documentation consistency check.

Scans markdown files for backtick-quoted file paths and for ``python``
commands, and fails when they reference files or modules that do not exist —
so README.md and EXPERIMENTS.md cannot silently rot as the code moves.

Checked, conservatively (to avoid false positives on prose):

* inline-code spans and fenced code lines that *look like repo paths* — a
  known extension (``.py``, ``.md``, ``.toml``, ``.yml``, ``.txt``, ``.dat``)
  or a trailing ``/`` — are resolved against the repository root (and, for
  bare module-ish paths, against ``src/``).  Glob-style spans containing
  ``*``, ``{`` or ``<`` placeholders are skipped.
* ``python -m <module>`` commands must name an importable module;
  ``python <script>.py`` commands must name an existing file.

Beyond link rot, CI can also assert that documentation *sections exist*:
``--require FILE#Heading`` fails unless ``FILE`` contains a markdown
heading whose text matches ``Heading`` (case-insensitive substring match,
any heading level) — so a PR that adds an experiment sweep cannot land
without its EXPERIMENTS.md section.

Run with::

    PYTHONPATH=src python -m repro.bench.doccheck README.md EXPERIMENTS.md
    PYTHONPATH=src python -m repro.bench.doccheck \\
        --require "EXPERIMENTS.md#Coupled-pipeline" EXPERIMENTS.md
"""

from __future__ import annotations

import importlib.util
import re
import sys
from pathlib import Path
from typing import List, Optional, Sequence, Tuple

__all__ = ["check_document", "check_required_section", "main"]

#: Extensions that make a backtick span a file-path claim.
_PATH_SUFFIXES = (".py", ".md", ".toml", ".yml", ".yaml", ".txt", ".dat", ".json")

_CODE_SPAN = re.compile(r"`([^`\n]+)`")
_PY_MODULE = re.compile(r"python(?:3)?\s+-m\s+([A-Za-z_][\w.]*)")
_PY_SCRIPT = re.compile(r"python(?:3)?\s+([\w./-]+\.py)\b")

#: Segments that mark a span as a placeholder, not a concrete path.
_PLACEHOLDER_CHARS = ("*", "{", "<", "$", " ")


def _path_candidates(root: Path, token: str) -> List[Path]:
    """Where a doc-referenced path may legitimately live."""
    token = token.strip().rstrip(":,")
    return [
        root / token,
        root / "src" / token,
        root / "src" / "repro" / token,
        root / "examples" / token,
    ]


def _looks_like_path(token: str) -> bool:
    token = token.strip()
    if any(c in token for c in _PLACEHOLDER_CHARS):
        return False
    if token.endswith("/"):
        return "/" in token.rstrip("/") or len(token) > 1
    return token.endswith(_PATH_SUFFIXES)


def _module_exists(module: str) -> bool:
    try:
        return importlib.util.find_spec(module) is not None
    except (ImportError, ValueError):
        return False


def check_document(path: Path, root: Optional[Path] = None) -> List[Tuple[int, str]]:
    """Return ``(line_number, problem)`` pairs for one markdown file."""
    root = root or Path.cwd()
    problems: List[Tuple[int, str]] = []
    if not path.exists():
        return [(0, f"document {path} does not exist")]
    for lineno, line in enumerate(path.read_text(encoding="utf-8").splitlines(), 1):
        spans = _CODE_SPAN.findall(line)
        # Fenced code blocks have no backticks per line; treat command lines
        # inside them the same way by scanning every line for python commands.
        for span in spans:
            if _looks_like_path(span):
                token = span.strip().rstrip(":,").rstrip("/")
                if not any(c.exists() for c in _path_candidates(root, token)):
                    problems.append((lineno, f"referenced path `{span}` not found"))
        for match in _PY_MODULE.finditer(line):
            module = match.group(1)
            if not _module_exists(module):
                problems.append((lineno, f"`python -m {module}`: module not importable"))
        for match in _PY_SCRIPT.finditer(line):
            script = match.group(1)
            if not any(c.exists() for c in _path_candidates(root, script)):
                problems.append((lineno, f"`python {script}`: script not found"))
    return problems


_HEADING = re.compile(r"^#{1,6}\s+(.*\S)\s*$")


def check_required_section(requirement: str, root: Optional[Path] = None) -> List[str]:
    """Validate one ``FILE#Heading`` requirement; returns problem strings.

    The heading text matches case-insensitively as a substring of any
    markdown heading (``#`` through ``######``) in ``FILE``, so docs can
    reword around a stable anchor phrase without breaking CI.
    """
    root = root or Path.cwd()
    name, sep, heading = requirement.partition("#")
    if not sep or not name or not heading.strip():
        return [f"malformed --require {requirement!r} (expected FILE#Heading)"]
    path = root / name
    if not path.exists():
        return [f"{name}: document does not exist (required by --require)"]
    needle = heading.strip().lower()
    for line in path.read_text(encoding="utf-8").splitlines():
        match = _HEADING.match(line)
        if match and needle in match.group(1).lower():
            return []
    return [f"{name}: no heading matching {heading.strip()!r}"]


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; exits non-zero when any document is inconsistent."""
    args = list(argv) if argv is not None else sys.argv[1:]
    required: List[str] = []
    files: List[str] = []
    it = iter(args)
    for arg in it:
        if arg == "--require":
            value = next(it, None)
            if value is None:
                print("--require expects a FILE#Heading argument")
                return 1
            required.append(value)
        elif arg.startswith("--require="):
            required.append(arg.split("=", 1)[1])
        else:
            files.append(arg)
    if not files and not required:
        files = ["README.md"]
    root = Path.cwd()
    failed = False
    for name in files:
        problems = check_document(Path(name), root=root)
        for lineno, problem in problems:
            print(f"{name}:{lineno}: {problem}")
            failed = True
        if not problems:
            print(f"{name}: ok")
    for requirement in required:
        problems_r = check_required_section(requirement, root=root)
        for problem in problems_r:
            print(f"{requirement}: {problem}")
            failed = True
        if not problems_r:
            print(f"{requirement}: ok")
    return 1 if failed else 0


if __name__ == "__main__":  # pragma: no cover - exercised via CI
    sys.exit(main())
