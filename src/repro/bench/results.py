"""Benchmark result records and report formatting.

The harness produces one :class:`ExperimentRecord` per (machine, array size,
process count, strategy) point — the granularity of one bar/point in the
paper's Figure 8 — and this module turns collections of records into the
ASCII tables and series the benchmarks print.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = ["ExperimentRecord", "ResultTable", "format_table", "figure8_series"]

MB = 1024.0 * 1024.0


@dataclass(frozen=True)
class ExperimentRecord:
    """One measured point of the evaluation."""

    machine: str
    file_system: str
    array_label: str
    M: int
    N: int
    nprocs: int
    strategy: str
    bytes_requested: int
    #: Bytes moved to/from the file system (for ``mode="read"`` this is the
    #: fetched volume — smaller than requested when an aggregation strategy
    #: de-duplicates overlapped bytes).
    bytes_written: int
    makespan_seconds: float
    atomic_ok: bool
    overlap_bytes: int = 0
    phases: int = 1
    lock_waits: int = 0
    pattern: str = "column-wise"
    #: Which direction the experiment measured: ``"write"``, ``"read"`` or
    #: ``"mixed"`` (concurrent writer and reader groups).
    mode: str = "write"
    extra: Dict[str, float] = field(default_factory=dict)
    #: For the adaptive ``auto`` strategy: the concrete delegate it selected
    #: for this point (``two-phase``, ``rank-ordering``, ...).  ``None`` for
    #: static strategies.  The derived ``cb_*`` hints ride in ``extra``.
    selected_strategy: Optional[str] = None

    @property
    def bandwidth_mb_per_s(self) -> float:
        """Effective bandwidth (requested volume / slowest-rank time), MB/s."""
        if self.makespan_seconds <= 0:
            return float("inf")
        return self.bytes_requested / MB / self.makespan_seconds

    def as_row(self) -> Dict[str, str]:
        """Flat dict used by the table formatter."""
        return {
            "machine": self.machine,
            "fs": self.file_system,
            "array": self.array_label,
            "P": str(self.nprocs),
            "op": self.mode,
            "strategy": self.strategy,
            "MB requested": f"{self.bytes_requested / MB:.1f}",
            "MB moved": f"{self.bytes_written / MB:.1f}",
            "time (s)": f"{self.makespan_seconds:.4f}",
            "BW (MB/s)": f"{self.bandwidth_mb_per_s:.2f}",
            "atomic": "yes" if self.atomic_ok else "NO",
        }


class ResultTable:
    """A collection of experiment records with simple query helpers."""

    def __init__(self, records: Iterable[ExperimentRecord] = ()) -> None:
        self.records: List[ExperimentRecord] = list(records)

    def add(self, record: ExperimentRecord) -> None:
        """Append one record."""
        self.records.append(record)

    def filter(self, **criteria) -> "ResultTable":
        """Records matching all ``field=value`` criteria."""
        out = [
            r for r in self.records
            if all(getattr(r, key) == value for key, value in criteria.items())
        ]
        return ResultTable(out)

    def bandwidth_of(self, **criteria) -> Optional[float]:
        """Bandwidth of the single record matching ``criteria`` (None if absent)."""
        matches = self.filter(**criteria).records
        if not matches:
            return None
        if len(matches) > 1:
            raise ValueError(f"criteria {criteria} match {len(matches)} records")
        return matches[0].bandwidth_mb_per_s

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self):
        return iter(self.records)

    def to_text(self, title: str = "") -> str:
        """Render all records as an aligned ASCII table."""
        rows = [r.as_row() for r in self.records]
        return format_table(rows, title=title)


def format_table(rows: Sequence[Dict[str, str]], title: str = "") -> str:
    """Align a list of uniform dicts into an ASCII table."""
    if not rows:
        return f"{title}\n(no data)\n" if title else "(no data)\n"
    columns = list(rows[0].keys())
    widths = {c: max(len(c), max(len(str(r[c])) for r in rows)) for c in columns}
    lines: List[str] = []
    if title:
        lines.append(title)
    header = " | ".join(c.ljust(widths[c]) for c in columns)
    lines.append(header)
    lines.append("-+-".join("-" * widths[c] for c in columns))
    for r in rows:
        lines.append(" | ".join(str(r[c]).ljust(widths[c]) for c in columns))
    return "\n".join(lines) + "\n"


def figure8_series(
    table: ResultTable, machine: str, array_label: str
) -> Dict[str, List[Tuple[int, float]]]:
    """One Figure 8 panel: strategy -> [(nprocs, bandwidth MB/s), ...]."""
    panel = table.filter(machine=machine, array_label=array_label)
    series: Dict[str, List[Tuple[int, float]]] = {}
    for record in sorted(panel.records, key=lambda r: (r.strategy, r.nprocs)):
        series.setdefault(record.strategy, []).append(
            (record.nprocs, record.bandwidth_mb_per_s)
        )
    return series
