"""Benchmark harness: machine presets (Table 1), the Figure 8 sweep, reports."""

from .machines import ALL_MACHINES, CPLANT, IBM_SP, MachineSpec, ORIGIN2000, machine_by_name, table1_rows
from .results import ExperimentRecord, ResultTable, figure8_series, format_table
from .harness import (
    DEFAULT_ROW_SCALE,
    run_column_wise_experiment,
    run_figure8_grid,
    run_mixed_experiment,
    run_read_experiment,
    run_read_sweep,
    strategies_for_machine,
)
from .figures import (
    figure1_ghost_overlap_counts,
    figure3_partition_summary,
    figure6_coloring_demo,
    figure7_rank_ordering_views,
    figure8_report,
)

__all__ = [
    "MachineSpec",
    "CPLANT",
    "ORIGIN2000",
    "IBM_SP",
    "ALL_MACHINES",
    "machine_by_name",
    "table1_rows",
    "ExperimentRecord",
    "ResultTable",
    "format_table",
    "figure8_series",
    "run_column_wise_experiment",
    "run_figure8_grid",
    "run_read_experiment",
    "run_read_sweep",
    "run_mixed_experiment",
    "strategies_for_machine",
    "DEFAULT_ROW_SCALE",
    "figure1_ghost_overlap_counts",
    "figure3_partition_summary",
    "figure6_coloring_demo",
    "figure7_rank_ordering_views",
    "figure8_report",
]
