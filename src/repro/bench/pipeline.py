"""Coupled-pipeline sweep: producer:consumer ratios x overlap depth.

Each sweep point couples a producer group and a consumer group (world size
``P + C``) over intercomm bridges (:mod:`repro.pipelines`) and runs the
same streaming checkpoint/analysis workload twice:

* ``barrier`` — the write-barrier-read baseline: consumers wait for the
  producers' step to commit, producers wait for the consumers' analysis;
* ``overlapped`` — simulate-while-checkpoint: producers overlap the commit
  with compute via the split-collective API and run ``overlap_depth``
  steps ahead, consumers overlap their in-situ ``Iread_all`` with analysis
  compute.

For every point the overlapped makespan must be *strictly* lower than the
baseline, every per-step byte stream must pass the cross-group
serialisability verifier, and every consumer must receive exactly the
deterministic expected stream (the N:M redistribution through the shared
file is byte-checked).  Results land under
``pipeline/<fs>/p<P>c<C>d<depth>``: one summary row per coordination mode,
one row per stage (carrying ``stage``), and one row per verified stream
(carrying ``stream_id``).  The smoke point is additionally gated by
:mod:`repro.bench.perfgate`.

Run the sweep (CI uploads the JSON it writes)::

    PYTHONPATH=src python -m repro.bench.pipeline
    PYTHONPATH=src python -m repro.bench.pipeline --smoke --budget 60
"""

from __future__ import annotations

import argparse
import sys
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..pipelines import (
    CoupledPipeline,
    PipelineResult,
    PipelineSpec,
    StageSpec,
    expected_consumer_streams,
)
from .jsonlog import record_results
from .machines import MachineSpec, machine_by_name

__all__ = [
    "DEFAULT_RATIOS",
    "DEFAULT_DEPTHS",
    "DEFAULT_SHAPE",
    "DEFAULT_STEPS",
    "SMOKE_POINT",
    "PipelinePoint",
    "run_pipeline_point",
    "run_pipeline_sweep",
    "main",
]

#: Producer:consumer rank ratios of the sweep (the N:M redistributions).
DEFAULT_RATIOS = ((4, 4), (8, 2), (2, 8))
#: Producer run-ahead depths of the sweep.
DEFAULT_DEPTHS = (1, 2)

#: Checkpoint array shape (M x N bytes) and per-run step count.
DEFAULT_SHAPE = (32, 512)
DEFAULT_STEPS = 4

#: Per-step virtual compute charged on each side; both the simulation the
#: checkpoint overlaps and the analysis the in-situ read overlaps.
DEFAULT_COMPUTE_SECONDS = 0.002

#: The CI smoke / perf-gate point: (producers, consumers, depth).
SMOKE_POINT = (4, 4, 2)


@dataclass
class PipelinePoint:
    """One sweep point: baseline + overlapped runs and their verdicts."""

    machine: MachineSpec
    producers: int
    consumers: int
    depth: int
    strategy: str
    barrier: PipelineResult
    overlapped: PipelineResult
    #: Whether both runs' streams passed the cross-group verifier.
    atomic_ok: bool
    #: Whether every consumer delivered exactly the expected byte stream.
    streams_ok: bool
    entries: List[Dict] = field(default_factory=list)

    @property
    def overlap_won(self) -> float:
        """Virtual time the overlapped discipline saved over the baseline."""
        return self.barrier.makespan - self.overlapped.makespan

    @property
    def experiment(self) -> str:
        """The jsonlog experiment name this point files under."""
        return (
            f"pipeline/{self.machine.file_system.lower()}"
            f"/p{self.producers}c{self.consumers}d{self.depth}"
        )


def _spec_for(
    producers: int,
    consumers: int,
    depth: int,
    coordination: str,
    strategy: str,
    shape: Tuple[int, int],
    steps: int,
    compute_seconds: float,
) -> PipelineSpec:
    M, N = shape
    return PipelineSpec(
        stages=(
            StageSpec("producer", producers, compute_seconds=compute_seconds),
            StageSpec("consumer", consumers, compute_seconds=compute_seconds),
        ),
        M=M,
        N=N,
        steps=steps,
        strategy=strategy,
        coordination=coordination,
        overlap_depth=depth,
        filename=f"/pipeline/p{producers}c{consumers}d{depth}_{coordination}",
    )


def run_pipeline_point(
    machine: MachineSpec,
    producers: int,
    consumers: int,
    depth: int = 1,
    strategy: str = "two-phase",
    shape: Tuple[int, int] = DEFAULT_SHAPE,
    steps: int = DEFAULT_STEPS,
    compute_seconds: float = DEFAULT_COMPUTE_SECONDS,
    timeout: Optional[float] = 120.0,
) -> PipelinePoint:
    """Run one (P:C ratio, depth) point under both coupling disciplines."""
    results: Dict[str, PipelineResult] = {}
    for coordination in ("barrier", "overlapped"):
        spec = _spec_for(
            producers, consumers, depth, coordination, strategy,
            shape, steps, compute_seconds,
        )
        results[coordination] = CoupledPipeline(
            spec, fs_config=machine.make_fs_config(), timeout=timeout
        ).run()

    atomic_ok = True
    streams_ok = True
    for result in results.values():
        atomic_ok = atomic_ok and result.verify().ok
        for step in range(result.spec.steps):
            expected = expected_consumer_streams(result.spec, step)
            for c in range(consumers):
                if result.delivered.get((step, c)) != expected[c]:
                    streams_ok = False

    total = producers + consumers
    entries: List[Dict] = []
    for coordination, result in results.items():
        label = f"{strategy}+{coordination}"
        entries.append(
            {
                "P": total,
                "strategy": label,
                "makespan": result.makespan,
                "bytes": result.bytes_streamed,
                "wall_seconds": result.wall_seconds,
                "ops": total * steps,
            }
        )
        for stage, nprocs in (("producer", producers), ("consumer", consumers)):
            finish = max(
                (
                    r.get("bytes_written", 0)
                    for r in result.returns
                    if r["role"] == stage
                ),
                default=0,
            )
            entries.append(
                {
                    "P": nprocs,
                    "strategy": label,
                    "makespan": result.makespan,
                    "bytes": finish if stage == "producer" else result.bytes_streamed,
                    "stage": stage,
                }
            )
        for trace in result.streams:
            entries.append(
                {
                    "P": total,
                    "strategy": label,
                    "makespan": result.makespan,
                    "bytes": sum(len(o.data) for o in trace.observations),
                    "stream_id": trace.stream_id,
                }
            )
    return PipelinePoint(
        machine=machine,
        producers=producers,
        consumers=consumers,
        depth=depth,
        strategy=strategy,
        barrier=results["barrier"],
        overlapped=results["overlapped"],
        atomic_ok=atomic_ok,
        streams_ok=streams_ok,
        entries=entries,
    )


def run_pipeline_sweep(
    machine: MachineSpec,
    ratios: Sequence[Tuple[int, int]] = DEFAULT_RATIOS,
    depths: Sequence[int] = DEFAULT_DEPTHS,
    strategy: str = "two-phase",
    shape: Tuple[int, int] = DEFAULT_SHAPE,
    steps: int = DEFAULT_STEPS,
) -> List[PipelinePoint]:
    """The full grid: every producer:consumer ratio at every depth."""
    return [
        run_pipeline_point(
            machine, producers, consumers, depth,
            strategy=strategy, shape=shape, steps=steps,
        )
        for producers, consumers in ratios
        for depth in depths
    ]


def _parse_ratios(text: str) -> Tuple[Tuple[int, int], ...]:
    out = []
    for part in text.split(","):
        if not part:
            continue
        p, _, c = part.partition(":")
        out.append((int(p), int(c)))
    return tuple(out)


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; exits non-zero when a point fails verification or
    the overlapped discipline fails to beat the baseline."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--machine", default="IBM SP")
    parser.add_argument("--ratios", default=",".join(f"{p}:{c}" for p, c in DEFAULT_RATIOS),
                        help="comma-separated producer:consumer rank ratios")
    parser.add_argument("--depths", default=",".join(map(str, DEFAULT_DEPTHS)),
                        help="comma-separated overlap depths")
    parser.add_argument("--strategy", default="two-phase")
    parser.add_argument("--steps", type=int, default=DEFAULT_STEPS)
    parser.add_argument("--budget", type=float, default=None,
                        help="host wall-clock budget (seconds) over the whole sweep")
    parser.add_argument("--smoke", action="store_true",
                        help=f"run only the CI smoke point {SMOKE_POINT}")
    args = parser.parse_args(list(argv) if argv is not None else None)

    machine = machine_by_name(args.machine)
    if args.smoke:
        ratios: Sequence[Tuple[int, int]] = (SMOKE_POINT[:2],)
        depths: Sequence[int] = (SMOKE_POINT[2],)
    else:
        ratios = _parse_ratios(args.ratios)
        depths = tuple(int(d) for d in args.depths.split(",") if d)

    points = run_pipeline_sweep(
        machine, ratios, depths, strategy=args.strategy, steps=args.steps
    )
    problems: List[str] = []
    total_wall = 0.0
    for point in points:
        record_results(point.experiment, point.entries)
        total_wall += point.barrier.wall_seconds + point.overlapped.wall_seconds
        print(
            f"{point.experiment}: barrier {point.barrier.makespan:.6f}s, "
            f"overlapped {point.overlapped.makespan:.6f}s "
            f"(won {point.overlap_won:.6f}s), "
            f"streamed {point.overlapped.bytes_streamed} B, "
            f"wall {point.barrier.wall_seconds + point.overlapped.wall_seconds:.2f}s"
        )
        if not point.atomic_ok:
            problems.append(f"{point.experiment}: cross-group stream atomicity violated")
        if not point.streams_ok:
            problems.append(f"{point.experiment}: consumer streams diverge from expected bytes")
        if point.overlap_won <= 0:
            problems.append(
                f"{point.experiment}: overlapped makespan "
                f"{point.overlapped.makespan:.6f}s does not beat the "
                f"write-barrier-read baseline {point.barrier.makespan:.6f}s"
            )
    if args.budget is not None and total_wall > args.budget:
        problems.append(
            f"sweep wall clock {total_wall:.2f}s exceeds the {args.budget:.2f}s budget"
        )
    for problem in problems:
        print(f"FAIL: {problem}")
    if problems:
        return 1
    print(f"pipeline sweep ok ({len(points)} points, wall {total_wall:.2f}s)")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via CI
    sys.exit(main())
