"""Machine presets — Table 1 of the paper.

Each :class:`MachineSpec` records the descriptive fields printed in Table 1
(file system, CPU, network, I/O server count, peak I/O bandwidth) and knows
how to build the corresponding file-system personality
(:mod:`repro.fs.presets`) used by the benchmark harness.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from ..fs.filesystem import FSConfig
from ..fs.presets import enfs_config, gpfs_config, xfs_config

__all__ = ["MachineSpec", "CPLANT", "ORIGIN2000", "IBM_SP", "ALL_MACHINES", "machine_by_name", "table1_rows"]


@dataclass(frozen=True)
class MachineSpec:
    """One row of Table 1 plus the file-system personality it maps to."""

    name: str
    file_system: str
    cpu_type: str
    cpu_speed: str
    network: str
    io_servers: Optional[int]
    peak_io_bandwidth: str
    supports_locking: bool
    config_factory: Callable[[], FSConfig]

    def make_fs_config(self) -> FSConfig:
        """Build the file-system configuration for this machine."""
        return self.config_factory()


CPLANT = MachineSpec(
    name="Cplant",
    file_system="ENFS",
    cpu_type="Alpha",
    cpu_speed="500 MHz",
    network="Myrinet",
    io_servers=12,
    peak_io_bandwidth="50 MB/s",
    supports_locking=False,
    config_factory=enfs_config,
)

ORIGIN2000 = MachineSpec(
    name="Origin 2000",
    file_system="XFS",
    cpu_type="R10000",
    cpu_speed="195 MHz",
    network="Gigabit Ethernet",
    io_servers=None,
    peak_io_bandwidth="4 GB/s",
    supports_locking=True,
    config_factory=xfs_config,
)

IBM_SP = MachineSpec(
    name="IBM SP",
    file_system="GPFS",
    cpu_type="Power3",
    cpu_speed="375 MHz",
    network="Colony switch",
    io_servers=12,
    peak_io_bandwidth="1.5 GB/s",
    supports_locking=True,
    config_factory=gpfs_config,
)

ALL_MACHINES: List[MachineSpec] = [CPLANT, ORIGIN2000, IBM_SP]

_BY_NAME: Dict[str, MachineSpec] = {
    m.name.lower(): m for m in ALL_MACHINES
}
_BY_NAME.update({m.file_system.lower(): m for m in ALL_MACHINES})


def machine_by_name(name: str) -> MachineSpec:
    """Look up a machine by machine name or file-system name."""
    try:
        return _BY_NAME[name.lower()]
    except KeyError:
        known = sorted({m.name for m in ALL_MACHINES})
        raise KeyError(f"unknown machine {name!r}; known: {known}") from None


def table1_rows() -> List[Dict[str, str]]:
    """Table 1 rendered as a list of dicts (one per machine column)."""
    rows = []
    for m in ALL_MACHINES:
        rows.append(
            {
                "machine": m.name,
                "file_system": m.file_system,
                "cpu_type": m.cpu_type,
                "cpu_speed": m.cpu_speed,
                "network": m.network,
                "io_servers": str(m.io_servers) if m.io_servers is not None else "-",
                "peak_io_bandwidth": m.peak_io_bandwidth,
            }
        )
    return rows
