"""CI perf-regression gate: virtual-time makespans vs a checked-in baseline.

Because execution is a deterministic discrete-event simulation, the virtual
makespan of a fixed workload is a *pure function of the code* — any drift is
a real change in the modelled I/O pipeline, not noise.  This gate runs a
small deterministic two-phase workload set, mirrors the measurements into
``benchmarks/results/latest.json`` (:mod:`repro.bench.jsonlog`), and fails
the build when any measured makespan regresses more than the tolerance
(default 15%) over the baseline committed at ``benchmarks/perf_baseline.json``.

Intentional performance changes update the baseline explicitly::

    PYTHONPATH=src python -m repro.bench.perfgate --update-baseline

Run the gate (CI does this on every build)::

    PYTHONPATH=src python -m repro.bench.perfgate
"""

from __future__ import annotations

import json
import sys
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from .harness import run_column_wise_experiment
from .jsonlog import SCHEMA_VERSION, entries_from_records, record_results
from .overlap import run_overlap_experiment

__all__ = ["BASELINE_PATH", "DEFAULT_TOLERANCE", "measure", "compare", "main"]

BASELINE_PATH = Path("benchmarks") / "perf_baseline.json"

#: Allowed relative makespan growth before the gate fails.
DEFAULT_TOLERANCE = 0.15

#: The gated workloads: quick, deterministic, all exercising the two-phase
#: strategy (the performance centrepiece the roadmap tracks).
_WRITE_POINTS = (4, 16)
_WRITE_SHAPE = (64, 512)  # M x N bytes, column-wise
_OVERLAP_POINT = (16, 16, 256)  # P, M, N


def measure() -> Dict[str, List[Dict]]:
    """Run the gated workloads; returns ``experiment -> entries``."""
    write_records = [
        run_column_wise_experiment(
            "Origin 2000", _WRITE_SHAPE[0], _WRITE_SHAPE[1], nprocs, "two-phase"
        )
        for nprocs in _WRITE_POINTS
    ]
    P, M, N = _OVERLAP_POINT
    overlap_record = run_overlap_experiment("IBM SP", M, N, P, api="split")
    return {
        "perfgate/two-phase-write": entries_from_records(write_records),
        "perfgate/overlap-split": entries_from_records([overlap_record]),
    }


def _index(entries: Sequence[Dict]) -> Dict:
    return {(e["P"], e["strategy"]): e for e in entries}


def compare(
    measured: Dict[str, List[Dict]],
    baseline: Dict,
    tolerance: Optional[float] = None,
) -> List[str]:
    """Problems (empty when the gate passes) of measured vs baseline."""
    tol = tolerance if tolerance is not None else baseline.get("tolerance", DEFAULT_TOLERANCE)
    problems: List[str] = []
    base_experiments = baseline.get("experiments", {})
    for experiment, entries in measured.items():
        base = _index(base_experiments.get(experiment, []))
        for entry in entries:
            key = (entry["P"], entry["strategy"])
            ref = base.get(key)
            if ref is None:
                problems.append(
                    f"{experiment}: no baseline for P={key[0]} strategy={key[1]} "
                    "(run `python -m repro.bench.perfgate --update-baseline`)"
                )
                continue
            limit = ref["makespan"] * (1.0 + tol)
            if entry["makespan"] > limit:
                problems.append(
                    f"{experiment}: P={key[0]} {key[1]} makespan "
                    f"{entry['makespan']:.6f}s exceeds baseline "
                    f"{ref['makespan']:.6f}s by more than {tol:.0%}"
                )
            elif entry["makespan"] < ref["makespan"] * (1.0 - tol):
                print(
                    f"note: {experiment}: P={key[0]} {key[1]} improved "
                    f"{ref['makespan']:.6f}s -> {entry['makespan']:.6f}s; "
                    "consider refreshing the baseline"
                )
    return problems


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; exits non-zero on a perf regression."""
    args = list(argv) if argv is not None else sys.argv[1:]
    update = "--update-baseline" in args
    measured = measure()
    for experiment, entries in measured.items():
        record_results(experiment, entries)
        for entry in entries:
            print(
                f"{experiment}: P={entry['P']} {entry['strategy']} "
                f"makespan {entry['makespan']:.6f}s ({entry['bytes']} bytes)"
            )
    if update:
        BASELINE_PATH.parent.mkdir(parents=True, exist_ok=True)
        BASELINE_PATH.write_text(
            json.dumps(
                {
                    "schema": SCHEMA_VERSION,
                    "tolerance": DEFAULT_TOLERANCE,
                    "experiments": measured,
                },
                indent=2,
                sort_keys=True,
            )
            + "\n",
            encoding="utf-8",
        )
        print(f"baseline updated: {BASELINE_PATH}")
        return 0
    if not BASELINE_PATH.exists():
        print(f"FAIL: no baseline at {BASELINE_PATH}; run with --update-baseline")
        return 1
    baseline = json.loads(BASELINE_PATH.read_text(encoding="utf-8"))
    problems = compare(measured, baseline)
    for problem in problems:
        print(f"FAIL: {problem}")
    if problems:
        return 1
    print("perf gate ok")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via CI
    sys.exit(main())
