"""CI perf-regression gate: virtual-time makespans vs a checked-in baseline.

Because execution is a deterministic discrete-event simulation, the virtual
makespan of a fixed workload is a *pure function of the code* — any drift is
a real change in the modelled I/O pipeline, not noise.  This gate runs a
small deterministic two-phase workload set, mirrors the measurements into
``benchmarks/results/latest.json`` (:mod:`repro.bench.jsonlog`), and fails
the build when any measured makespan regresses more than the tolerance
(default 15%) over the baseline committed at ``benchmarks/perf_baseline.json``.

Next to the virtual-time gates sit **wall-clock-per-simulated-op** gates:
each entry also records the measured host run time (``wall_seconds``) and
the simulated operation count it covers (``ops`` = ranks × phases).  Wall
clock is machine-dependent, so the relative gate is deliberately loose
(:data:`DEFAULT_WALL_FACTOR`, a multiple rather than a percentage) — it
exists to catch the order-of-magnitude scheduler/bookkeeping regressions
that virtual time is blind to, not 10% noise.  :func:`check_wall` is the
absolute form (a per-op ceiling) used by the extended Section 3.4 sweeps.
Both I/O directions are gated: the write workloads and the read-back twins
(the hierarchical bulk-read point, the adaptive read grid under
:data:`ADAPTIVE_READ_PREFIX`) go through the same relative, wall-clock and
adaptive checks.  The multi-tenant smoke point
(:func:`measure_multitenant`) adds cross-job absolute gates on top: write
atomicity across jobs racing on one shared file, a Jain-fairness floor at
equal offered load, and its own wall budget.  The coupled-pipeline smoke
point (:func:`measure_pipeline`) gates the streaming subsystem: the
overlapped (simulate-while-checkpoint) pipeline must *strictly* beat the
write-barrier-read baseline, every cross-group byte stream must verify
un-torn and match the deterministic expected bytes, and the point has its
own wall budget.

Intentional performance changes update the baseline explicitly::

    PYTHONPATH=src python -m repro.bench.perfgate --update-baseline

Run the gate (CI does this on every build)::

    PYTHONPATH=src python -m repro.bench.perfgate
"""

from __future__ import annotations

import json
import sys
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from .harness import run_column_wise_experiment, run_read_experiment
from .jsonlog import SCHEMA_VERSION, entries_from_records, record_results
from .overlap import run_overlap_experiment

__all__ = [
    "BASELINE_PATH",
    "DEFAULT_TOLERANCE",
    "DEFAULT_WALL_FACTOR",
    "DEFAULT_WALL_BUDGET_PER_OP",
    "DEFAULT_ADAPTIVE_FACTOR",
    "ADAPTIVE_PREFIX",
    "ADAPTIVE_READ_PREFIX",
    "DEFAULT_FAIRNESS_FLOOR",
    "DEFAULT_MULTITENANT_WALL_BUDGET_PER_OP",
    "DEFAULT_PIPELINE_WALL_BUDGET_PER_OP",
    "measure",
    "measure_adaptive",
    "measure_adaptive_read",
    "measure_plan_cache",
    "measure_multitenant",
    "measure_pipeline",
    "compare",
    "check_wall",
    "check_adaptive",
    "main",
]

BASELINE_PATH = Path("benchmarks") / "perf_baseline.json"

#: Allowed relative makespan growth before the gate fails.
DEFAULT_TOLERANCE = 0.15

#: Allowed wall-clock-per-simulated-op growth factor over the baseline.
#: Wall clock varies with the host (unlike the deterministic makespan), so
#: this is a generous multiple: it catches asymptotic regressions in the
#: scheduler/bookkeeping, not machine jitter.
DEFAULT_WALL_FACTOR = 5.0

#: Absolute wall-clock ceiling per simulated operation (seconds) for
#: :func:`check_wall` — the budget the extended Section 3.4 sweep must meet
#: at every point for the 16k–64k rank runs to fit the CI wall budget.
DEFAULT_WALL_BUDGET_PER_OP = 1e-3

#: The adaptive ``auto`` strategy may not be worse than the best static
#: strategy by more than this factor at any adaptive-sweep grid point.
DEFAULT_ADAPTIVE_FACTOR = 1.10

#: Experiment-name prefix :func:`check_adaptive` scans for.
ADAPTIVE_PREFIX = "perfgate/adaptive/"

#: Same gate, read-back grid: the prefix :func:`measure_adaptive_read` files
#: its experiments under, scanned by a second :func:`check_adaptive` pass so
#: the read tuner is held to the same 10%-of-best-static standard as the
#: write tuner (with its own independent strict-win requirement).
ADAPTIVE_READ_PREFIX = "perfgate/adaptive-read/"

#: The ``auto`` warm (plan-cache hit) view-resolution CPU per rank-collective
#: must undercut the cold resolution cost by at least this factor — measured
#: host time of exactly the work a hit elides, so the margin is wide (~4-7x
#: in practice) and robust against scheduler noise.
DEFAULT_PLAN_CACHE_FACTOR = 0.5

#: Absolute wall ceiling per simulated rank-op for the multi-tenant smoke
#: point.  A multi-tenant rank-op is costlier on the host than a single-job
#: one (cross-job token churn, lock contention, per-job clock bookkeeping),
#: so it gets its own budget — still tight enough to catch an
#: order-of-magnitude scheduler regression, at ~3x the observed cost.
DEFAULT_MULTITENANT_WALL_BUDGET_PER_OP = 5e-3

#: Absolute wall ceiling per simulated step-op for the coupled-pipeline
#: smoke point (two full pipeline runs, barrier + overlapped, each
#: ``total_ranks x steps`` ops).  Streaming ops carry intercomm bridges and
#: per-step opens on top of the plain collective cost, so the budget sits
#: at ~3x the observed per-op cost — tight enough to catch an
#: order-of-magnitude regression in the bridge or handoff machinery.
DEFAULT_PIPELINE_WALL_BUDGET_PER_OP = 5e-3

#: The multi-tenant smoke point must keep Jain's fairness index over the
#: per-job makespans at or above this floor: identical jobs arriving
#: together (equal offered load) must finish in near-equal time, so a drop
#: means the shared-file-system scheduling started starving a tenant.
DEFAULT_FAIRNESS_FLOOR = 0.8

#: The gated workloads: quick, deterministic, all exercising the two-phase
#: strategy (the performance centrepiece the roadmap tracks).
_WRITE_POINTS = (4, 16)
_WRITE_SHAPE = (64, 512)  # M x N bytes, column-wise
_OVERLAP_POINT = (16, 16, 256)  # P, M, N
#: The hierarchical strategy on the bulk-synchronous replay executor — the
#: substrate of the extended Section 3.4 sweep — at a quick thousand-rank
#: point, so both its virtual-time schedule and the replay's wall clock per
#: op are locked in by the baseline.
_HIER_POINT = (1024, 8, 2048)  # P, M, N
_HIER_OPTIONS = {"num_aggregators": 8, "ranks_per_node": 8}
#: The read-back twin of :data:`_HIER_POINT`: the same thousand-rank
#: hierarchical workload replayed through :class:`~repro.core.bulk.
#: BulkReadExecutor`, locking in the read schedule's virtual time and the
#: read replay's wall clock per op.
_HIER_READ_POINT = (1024, 8, 2048)  # P, M, N


def measure() -> Dict[str, List[Dict]]:
    """Run the gated workloads; returns ``experiment -> entries``."""
    write_records = [
        run_column_wise_experiment(
            "Origin 2000", _WRITE_SHAPE[0], _WRITE_SHAPE[1], nprocs, "two-phase"
        )
        for nprocs in _WRITE_POINTS
    ]
    P, M, N = _OVERLAP_POINT
    overlap_record = run_overlap_experiment("IBM SP", M, N, P, api="split")
    hier_p, hier_m, hier_n = _HIER_POINT
    hier_record = run_column_wise_experiment(
        "IBM SP", hier_m, hier_n, hier_p, "two-phase-hier",
        overlap_columns=2, executor="bulk",
        strategy_options=dict(_HIER_OPTIONS),
    )
    read_p, read_m, read_n = _HIER_READ_POINT
    read_record = run_read_experiment(
        "IBM SP", read_m, read_n, read_p, "two-phase-hier",
        overlap_columns=2, executor="bulk", verify=False,
        strategy_options=dict(_HIER_OPTIONS),
    )
    return {
        "perfgate/two-phase-write": entries_from_records(write_records),
        "perfgate/overlap-split": entries_from_records([overlap_record]),
        "perfgate/two-phase-hier-bulk": entries_from_records([hier_record]),
        "perfgate/two-phase-hier-bulk-read": entries_from_records([read_record]),
    }


def measure_adaptive() -> Dict[str, List[Dict]]:
    """Run the adaptive-vs-static sweep; one experiment per (machine, pattern).

    Grouping by machine and pattern keeps the ``(P, strategy)`` index keys of
    :func:`_index` unique within each experiment while letting one sweep
    cover both partitionings and both lock personalities.
    """
    from .adaptive import run_adaptive_sweep

    groups: Dict[str, List] = {}
    for record in run_adaptive_sweep():
        name = f"{ADAPTIVE_PREFIX}{record.file_system.lower()}-{record.pattern}"
        groups.setdefault(name, []).append(record)
    return {name: entries_from_records(records) for name, records in groups.items()}


def measure_adaptive_read() -> Dict[str, List[Dict]]:
    """Run the adaptive read sweep; one experiment per (machine, pattern).

    The read-back counterpart of :func:`measure_adaptive`: the same grouping
    rule, filed under :data:`ADAPTIVE_READ_PREFIX` so the read grid gets its
    own :func:`check_adaptive` pass (including its own strict-win demand).
    """
    from .adaptive import run_adaptive_read_sweep

    groups: Dict[str, List] = {}
    for record in run_adaptive_read_sweep():
        name = f"{ADAPTIVE_READ_PREFIX}{record.file_system.lower()}-{record.pattern}"
        groups.setdefault(name, []).append(record)
    return {name: entries_from_records(records) for name, records in groups.items()}


def check_adaptive(
    measured: Dict[str, Sequence[Dict]],
    factor: float = DEFAULT_ADAPTIVE_FACTOR,
    prefix: str = ADAPTIVE_PREFIX,
) -> List[str]:
    """The adaptive gate: problems (empty when it passes).

    Two conditions over every ``prefix`` experiment's grid points:

    * ``auto``'s makespan is within ``factor`` of the best static strategy at
      **every** point (the tuner never loses badly), and
    * ``auto`` strictly beats every static at **at least one** point (the
      derived hints genuinely buy something, they are not just a pass-through
      to one of the defaults).
    """
    problems: List[str] = []
    points = 0
    strict_wins = 0
    for experiment in sorted(measured):
        if not experiment.startswith(prefix):
            continue
        by_p: Dict[int, Dict[str, float]] = {}
        for entry in measured[experiment]:
            by_p.setdefault(entry["P"], {})[entry["strategy"]] = entry["makespan"]
        for P, strategies in sorted(by_p.items()):
            auto = strategies.get("auto")
            statics = {
                name: makespan
                for name, makespan in strategies.items()
                if name != "auto"
            }
            if auto is None or not statics:
                problems.append(
                    f"{experiment}: P={P} lacks an auto or a static measurement"
                )
                continue
            points += 1
            best_name, best = min(statics.items(), key=lambda item: item[1])
            if auto > best * factor:
                problems.append(
                    f"{experiment}: P={P} auto makespan {auto:.6f}s is worse "
                    f"than the best static ({best_name}, {best:.6f}s) by more "
                    f"than {factor - 1.0:.0%}"
                )
            if auto < best:
                strict_wins += 1
    if points == 0:
        problems.append(f"adaptive gate: no {prefix}* grid points measured")
    elif strict_wins == 0:
        problems.append(
            "adaptive gate: auto never strictly beat every static strategy "
            f"at any of the {points} grid points"
        )
    return problems


def measure_plan_cache(
    factor: float = DEFAULT_PLAN_CACHE_FACTOR,
) -> tuple:
    """The repeated-collective plan-cache experiment and its absolute gates.

    Runs the N-timestep workload twice — ``auto`` with the plan cache on and
    off — on private file systems, and returns ``(experiments, problems)``:

    * **identity** — the final bytes *and* per-byte writer provenance of the
      cached run equal the cold run's (a replayed plan must be a pure
      performance optimisation);
    * **virtual time** — warm steps are cheaper than the first (cold) step
      and the cached run's makespan never exceeds the uncached one (the hit
      claim payload is smaller than the shipped view, never larger);
    * **wall clock** — the warm per-rank-collective view-resolution CPU is
      under ``factor`` of the cold one (the work a hit elides, measured
      directly so simulator overhead cannot drown it).
    """
    from ..fs.filesystem import ParallelFileSystem
    from .adaptive import (
        REPEATED_POINT,
        fingerprint_of,
        repeated_filename,
        run_repeated_collective,
    )
    from .machines import machine_by_name

    machine_name, pattern, P, M, N, steps = REPEATED_POINT
    machine = machine_by_name(machine_name)
    problems: List[str] = []
    records = {}
    fingerprints = {}
    for plan_cache in (True, False):
        label = "auto" if plan_cache else "auto-nocache"
        fs = ParallelFileSystem(machine.make_fs_config())
        record = run_repeated_collective(
            machine, M, N, P, steps, pattern=pattern, plan_cache=plan_cache, fs=fs
        )
        records[label] = record
        fingerprints[label] = fingerprint_of(
            fs, repeated_filename(machine, M, N, P, label)
        )
        if not record.atomic_ok:
            problems.append(f"plan cache: the {label} run broke MPI atomicity")
    on, off = records["auto"], records["auto-nocache"]
    if fingerprints["auto"] != fingerprints["auto-nocache"]:
        problems.append(
            "plan cache: cached run's bytes/provenance differ from the cold "
            "run's — replayed plans are corrupting the outcome"
        )
    hits = on.extra.get("plan_hits", 0.0)
    if hits != float(steps - 1):
        problems.append(
            f"plan cache: expected {steps - 1} hits over {steps} steps, "
            f"observed {hits:.0f}"
        )
    if off.extra.get("plan_hits", 0.0) != 0.0:
        problems.append("plan cache: the plan_cache=false run recorded hits")
    if on.makespan_seconds > off.makespan_seconds:
        problems.append(
            f"plan cache: cached makespan {on.makespan_seconds:.6f}s exceeds "
            f"the uncached {off.makespan_seconds:.6f}s"
        )
    if on.extra["warm_step_seconds"] >= on.extra["first_step_seconds"]:
        problems.append(
            f"plan cache: warm steps ({on.extra['warm_step_seconds']:.9f}s) "
            "are not cheaper than the cold first step "
            f"({on.extra['first_step_seconds']:.9f}s) in virtual time"
        )
    warm_cpu = on.extra.get("resolve_warm_cpu_per_op")
    cold_cpu = off.extra.get("resolve_cold_cpu_per_op")
    if warm_cpu is None or cold_cpu is None:
        problems.append("plan cache: resolution CPU accounting is missing")
    elif warm_cpu >= cold_cpu * factor:
        problems.append(
            f"plan cache: warm resolution {warm_cpu * 1e6:.1f}us/op is not "
            f"under {factor:g}x the cold {cold_cpu * 1e6:.1f}us/op"
        )
    return {"perfgate/plan-cache": entries_from_records([on, off])}, problems


def measure_multitenant(
    fairness_floor: float = DEFAULT_FAIRNESS_FLOOR,
    budget_per_op: float = DEFAULT_MULTITENANT_WALL_BUDGET_PER_OP,
) -> tuple:
    """The multi-tenant smoke point and its absolute gates.

    Runs the CI smoke configuration (:data:`~repro.bench.multitenant.
    SMOKE_POINT`: 4 identical jobs x 16 ranks, batch arrivals so every
    tenant offers equal load, all racing on one shared file) and returns
    ``(experiments, problems)``:

    * **atomicity** — the cross-job write-atomicity verifier holds over the
      union of every job's globally-ranked views on the shared file;
    * **fairness** — Jain's index over the per-job makespans stays at or
      above ``fairness_floor`` (equal offered load must mean near-equal
      completion);
    * **wall clock** — the point stays under the absolute per-simulated-op
      budget, so the multi-tenant smoke cannot silently blow the CI wall.

    Exactly one summary entry is filed under ``perfgate/multitenant`` (the
    per-job entries live in the non-gated ``multitenant/*`` sweep
    experiments), keeping the gate's ``(P, strategy)`` index unique.
    """
    from .multitenant import SMOKE_POINT, run_multitenant_point
    from .machines import machine_by_name

    n_jobs, nprocs = SMOKE_POINT
    point = run_multitenant_point(
        machine_by_name("IBM SP"), n_jobs, nprocs, arrival_kind="batch"
    )
    problems: List[str] = []
    if not point.atomic_ok:
        problems.append(
            "multitenant: cross-job write atomicity violated on the shared file"
        )
    fairness = point.result.fairness
    if fairness < fairness_floor:
        problems.append(
            f"multitenant: Jain fairness {fairness:.4f} over the per-job "
            f"makespans is below the {fairness_floor:g} floor at equal "
            "offered load"
        )
    summary = point.summary
    problems += check_wall([summary], budget_per_op, experiment="perfgate/multitenant")
    return {"perfgate/multitenant": [summary]}, problems


def measure_pipeline(
    budget_per_op: float = DEFAULT_PIPELINE_WALL_BUDGET_PER_OP,
) -> tuple:
    """The coupled-pipeline smoke point and its absolute gates.

    Runs the CI smoke configuration (:data:`~repro.bench.pipeline.
    SMOKE_POINT`: a producer group and a consumer group bridged by an
    intercomm, streaming per-step checkpoints) under both coupling
    disciplines and returns ``(experiments, problems)``:

    * **overlap** — the overlapped (simulate-while-checkpoint,
      split-collective write + nonblocking in-situ read) pipeline's virtual
      makespan is *strictly* below the write-barrier-read baseline's;
    * **atomicity** — every per-step byte stream passes the cross-group
      serialisability verifier (:func:`~repro.verify.atomicity.
      check_stream_atomicity`);
    * **determinism** — every consumer received exactly the expected bytes
      of the N:M redistribution through the shared file;
    * **wall clock** — both runs stay under the absolute per-simulated-op
      budget.

    Two summary entries (one per coupling discipline, distinguished by the
    ``<strategy>+<coordination>`` label) are filed under
    ``perfgate/pipeline``; the per-stage and per-stream rows live in the
    non-gated ``pipeline/*`` sweep experiments.
    """
    from .pipeline import SMOKE_POINT, run_pipeline_point
    from .machines import machine_by_name

    producers, consumers, depth = SMOKE_POINT
    point = run_pipeline_point(
        machine_by_name("IBM SP"), producers, consumers, depth
    )
    problems: List[str] = []
    if not point.atomic_ok:
        problems.append(
            "pipeline: cross-group stream atomicity violated on a checkpoint"
        )
    if not point.streams_ok:
        problems.append(
            "pipeline: a consumer's delivered byte stream diverges from the "
            "deterministic expected redistribution"
        )
    if point.overlap_won <= 0:
        problems.append(
            f"pipeline: overlapped makespan {point.overlapped.makespan:.6f}s "
            f"does not strictly beat the write-barrier-read baseline "
            f"{point.barrier.makespan:.6f}s"
        )
    summaries = [
        entry
        for entry in point.entries
        if "stage" not in entry and "stream_id" not in entry
    ]
    problems += check_wall(summaries, budget_per_op, experiment="perfgate/pipeline")
    return {"perfgate/pipeline": summaries}, problems


def _index(entries: Sequence[Dict]) -> Dict:
    """Index entries by ``(P, strategy)``; duplicates are a hard error.

    A duplicate key in a baseline or measurement means two entries would
    silently shadow each other — and whichever one the dict kept could mask
    a regression in the other — so malformed inputs fail loudly instead.
    """
    out: Dict = {}
    for entry in entries:
        key = (entry["P"], entry["strategy"])
        if key in out:
            raise ValueError(
                f"duplicate perf entry for P={key[0]} strategy={key[1]}; "
                "baseline or measurement is malformed"
            )
        out[key] = entry
    return out


def _wall_per_op(entry: Dict) -> Optional[float]:
    """Wall seconds per simulated op, or ``None`` when not recorded."""
    wall = entry.get("wall_seconds")
    ops = entry.get("ops")
    if wall is None or not ops:
        return None
    return float(wall) / int(ops)


def compare(
    measured: Dict[str, List[Dict]],
    baseline: Dict,
    tolerance: Optional[float] = None,
    wall_factor: float = DEFAULT_WALL_FACTOR,
) -> List[str]:
    """Problems (empty when the gate passes) of measured vs baseline."""
    tol = tolerance if tolerance is not None else baseline.get("tolerance", DEFAULT_TOLERANCE)
    problems: List[str] = []
    base_experiments = baseline.get("experiments", {})
    for experiment, entries in measured.items():
        base = _index(base_experiments.get(experiment, []))
        for entry in _index(entries).values():
            key = (entry["P"], entry["strategy"])
            ref = base.get(key)
            if ref is None:
                problems.append(
                    f"{experiment}: no baseline for P={key[0]} strategy={key[1]} "
                    "(run `python -m repro.bench.perfgate --update-baseline`)"
                )
                continue
            limit = ref["makespan"] * (1.0 + tol)
            if entry["makespan"] > limit:
                problems.append(
                    f"{experiment}: P={key[0]} {key[1]} makespan "
                    f"{entry['makespan']:.6f}s exceeds baseline "
                    f"{ref['makespan']:.6f}s by more than {tol:.0%}"
                )
            elif entry["makespan"] < ref["makespan"] * (1.0 - tol):
                print(
                    f"note: {experiment}: P={key[0]} {key[1]} improved "
                    f"{ref['makespan']:.6f}s -> {entry['makespan']:.6f}s; "
                    "consider refreshing the baseline"
                )
            wall = _wall_per_op(entry)
            ref_wall = _wall_per_op(ref)
            if wall is not None and ref_wall is not None and ref_wall > 0:
                if wall > ref_wall * wall_factor:
                    problems.append(
                        f"{experiment}: P={key[0]} {key[1]} wall clock "
                        f"{wall * 1e6:.1f}us/op exceeds baseline "
                        f"{ref_wall * 1e6:.1f}us/op by more than "
                        f"{wall_factor:g}x"
                    )
    # A baseline entry with no measured counterpart means a gated workload
    # was renamed or dropped — the gate must not silently pass it.
    for experiment, entries in base_experiments.items():
        seen = _index(measured.get(experiment, []))
        for key in _index(entries):
            if key not in seen:
                problems.append(
                    f"{experiment}: baseline entry P={key[0]} strategy={key[1]} "
                    "has no measured counterpart; the gated workload was "
                    "renamed or dropped (run --update-baseline if intentional)"
                )
    return problems


def check_wall(
    entries: Sequence[Dict],
    budget_per_op: float = DEFAULT_WALL_BUDGET_PER_OP,
    experiment: str = "",
) -> List[str]:
    """Absolute wall-clock gate: problems for entries over the per-op budget.

    Used by the extended Section 3.4 sweep, where there is no meaningful
    committed wall baseline (the sweep points change as the scale grows):
    every entry recording wall clock must stay under ``budget_per_op``
    seconds per simulated operation.
    """
    label = f"{experiment}: " if experiment else ""
    problems: List[str] = []
    for entry in entries:
        wall = _wall_per_op(entry)
        if wall is not None and wall > budget_per_op:
            problems.append(
                f"{label}P={entry['P']} {entry['strategy']} wall clock "
                f"{wall * 1e6:.1f}us/op exceeds the "
                f"{budget_per_op * 1e6:.1f}us/op budget"
            )
    return problems


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; exits non-zero on a perf regression.

    The absolute gates (the adaptive sweep and the plan-cache checks, which
    need no baseline) always run; ``--update-baseline`` *refuses* to write a
    new baseline while any absolute gate fails, so a broken working tree can
    never be enshrined as the new reference.
    """
    args = list(argv) if argv is not None else sys.argv[1:]
    update = "--update-baseline" in args
    measured = measure()
    measured.update(measure_adaptive())
    measured.update(measure_adaptive_read())
    plan_experiments, absolute_problems = measure_plan_cache()
    measured.update(plan_experiments)
    mt_experiments, mt_problems = measure_multitenant()
    measured.update(mt_experiments)
    pipe_experiments, pipe_problems = measure_pipeline()
    measured.update(pipe_experiments)
    absolute_problems = absolute_problems + mt_problems + pipe_problems
    for experiment, entries in measured.items():
        record_results(experiment, entries)
        for entry in entries:
            wall = _wall_per_op(entry)
            wall_note = f", wall {wall * 1e6:.1f}us/op" if wall is not None else ""
            print(
                f"{experiment}: P={entry['P']} {entry['strategy']} "
                f"makespan {entry['makespan']:.6f}s ({entry['bytes']} bytes"
                f"{wall_note})"
            )
    absolute_problems = (
        absolute_problems
        + check_adaptive(measured)
        + check_adaptive(measured, prefix=ADAPTIVE_READ_PREFIX)
    )
    for problem in absolute_problems:
        print(f"FAIL: {problem}")
    if update:
        if absolute_problems:
            print(
                "refusing to update the baseline: the working tree fails the "
                "absolute perf gates above"
            )
            return 1
        BASELINE_PATH.parent.mkdir(parents=True, exist_ok=True)
        BASELINE_PATH.write_text(
            json.dumps(
                {
                    "schema": SCHEMA_VERSION,
                    "tolerance": DEFAULT_TOLERANCE,
                    "experiments": measured,
                },
                indent=2,
                sort_keys=True,
            )
            + "\n",
            encoding="utf-8",
        )
        print(f"baseline updated: {BASELINE_PATH}")
        return 0
    if not BASELINE_PATH.exists():
        print(f"FAIL: no baseline at {BASELINE_PATH}; run with --update-baseline")
        return 1
    baseline = json.loads(BASELINE_PATH.read_text(encoding="utf-8"))
    problems = absolute_problems + compare(measured, baseline)
    for problem in problems:
        print(f"FAIL: {problem}")
    if problems:
        return 1
    print("perf gate ok")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via CI
    sys.exit(main())
