"""Regeneration of the paper's figures as data/text.

The library has no plotting dependency; each ``figure*`` function returns the
underlying data series plus an ASCII rendering that the benchmark suite
prints, so the shape of every figure can be inspected from the benchmark
output (and EXPERIMENTS.md records a captured copy).
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np

from ..core.coloring import greedy_coloring
from ..core.overlap import build_overlap_matrix
from ..core.rank_ordering import resolve_by_rank
from ..core.regions import FileRegionSet, build_region_sets
from ..patterns.partition import block_block_views, column_wise_views, row_wise_views
from .results import ResultTable, figure8_series, format_table

__all__ = [
    "figure1_ghost_overlap_counts",
    "figure3_partition_summary",
    "figure6_coloring_demo",
    "figure7_rank_ordering_views",
    "figure8_report",
]


def figure1_ghost_overlap_counts(M: int, N: int, Pr: int, Pc: int, R: int) -> Dict[int, int]:
    """Figure 1: how many file bytes are accessed by exactly k processes.

    Returns a histogram ``{k: bytes}``; with a block-block ghost partitioning
    the interior edge regions are shared by 2 processes and the corner ghost
    regions by 4, which is precisely the situation Figure 1 illustrates.
    """
    views = block_block_views(M, N, Pr, Pc, R)
    counts = np.zeros(M * N, dtype=np.int16)
    for segs in views:
        for off, length in segs:
            counts[off : off + length] += 1
    hist: Dict[int, int] = {}
    for k in range(1, int(counts.max(initial=0)) + 1):
        nbytes = int(np.count_nonzero(counts == k))
        if nbytes:
            hist[k] = nbytes
    return hist


def figure3_partition_summary(M: int, N: int, P: int, R: int) -> List[Dict[str, str]]:
    """Figure 3: per-rank file-view shapes for row-wise and column-wise cases."""
    rows: List[Dict[str, str]] = []
    for pattern, views in (
        ("row-wise", row_wise_views(M, N, P, R)),
        ("column-wise", column_wise_views(M, N, P, R)),
    ):
        regions = build_region_sets(views)
        for region in regions:
            rows.append(
                {
                    "pattern": pattern,
                    "rank": str(region.rank),
                    "segments": str(region.num_segments),
                    "bytes": str(region.total_bytes),
                    "contiguous": "yes" if region.is_contiguous() else "no",
                    "extent bytes": str(region.extent_bytes()),
                }
            )
    return rows


def figure6_coloring_demo(M: int, N: int, P: int, R: int) -> Dict[str, object]:
    """Figure 6: overlap matrix W and the 2-colouring of the column-wise case."""
    regions = build_region_sets(column_wise_views(M, N, P, R))
    overlap = build_overlap_matrix(regions)
    coloring = greedy_coloring(overlap)
    return {
        "W": overlap.as_int_matrix(),
        "colors": list(coloring.colors),
        "num_colors": coloring.num_colors,
        "groups": coloring.groups(),
    }


def figure7_rank_ordering_views(M: int, N: int, P: int, R: int) -> List[Dict[str, str]]:
    """Figure 7: the trimmed per-rank file views under rank ordering."""
    regions = build_region_sets(column_wise_views(M, N, P, R))
    resolution = resolve_by_rank(regions)
    rows: List[Dict[str, str]] = []
    for rank in range(P):
        before = regions[rank]
        after = resolution.view_of(rank)
        cols_before = before.total_bytes // M if M else 0
        cols_after = after.total_bytes // M if M else 0
        rows.append(
            {
                "rank": str(rank),
                "columns before": str(cols_before),
                "columns after": str(cols_after),
                "bytes surrendered": str(resolution.surrendered_bytes[rank]),
            }
        )
    return rows


def figure8_report(table: ResultTable) -> str:
    """Render every Figure 8 panel present in ``table`` as ASCII series."""
    lines: List[str] = []
    machines = sorted({r.machine for r in table.records})
    labels = sorted({r.array_label for r in table.records})
    for machine in machines:
        for label in labels:
            series = figure8_series(table, machine, label)
            if not series:
                continue
            lines.append(f"-- {machine}  array {label} --")
            for strategy, points in sorted(series.items()):
                rendered = ", ".join(f"P={p}: {bw:8.2f} MB/s" for p, bw in points)
                lines.append(f"   {strategy:15s} {rendered}")
            lines.append("")
    return "\n".join(lines)
