"""Multi-tenant saturation sweep: concurrent jobs vs one shared file system.

Every other benchmark in :mod:`repro.bench` measures one job on an idle
machine.  This one sweeps *offered load*: ``n_jobs`` independent SPMD jobs
(each its own communicator world, rank count and strategy instance) are
placed on one shared :class:`~repro.fs.filesystem.ParallelFileSystem` by the
:class:`~repro.jobs.MultiTenantScheduler`, and each sweep point records the
per-job makespans (p50/p99), Jain's fairness index over them, and the
aggregate bandwidth the shared file system sustained — the saturation curve
(bandwidth and fairness vs offered load) of EXPERIMENTS.md.

Jobs share one target file by default, so every point doubles as a
cross-job atomicity experiment: after the run the union of all jobs'
globally-ranked views goes through the write-atomicity verifier
(:func:`~repro.verify.atomicity.check_mpi_atomicity`), and the sweep fails
loudly if contention ever tore an overlapped region between two tenants.

Results land in ``benchmarks/results/latest.json`` under
``multitenant/<fs>/j<jobs>xp<ranks>``: one entry per job (carrying
``job_id`` and ``offered_load``) plus one summary entry (carrying
``fairness``, ``offered_load``, ``wall_seconds`` and ``ops``; no
``job_id``).  The CI smoke point (4 jobs x 16 ranks) is additionally gated
by :mod:`repro.bench.perfgate` with a fairness floor and a wall budget.

The sweep also runs one *heterogeneous* configuration
(:func:`run_mixed_tenant_point`, filed under
``multitenant/<fs>/mixed-w<writers>r<readers>xp<ranks>``): write jobs
racing read jobs on one shared file under ``locking``, with every read
job's delivered bytes pushed through the cross-group stream verifier
(:func:`~repro.verify.atomicity.check_stream_atomicity`) — a torn or
stale read across the tenant boundary fails the sweep.

Run the sweep (CI uploads the JSON it writes)::

    PYTHONPATH=src python -m repro.bench.multitenant
    PYTHONPATH=src python -m repro.bench.multitenant --smoke --budget 60
"""

from __future__ import annotations

import argparse
import sys
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..fs.filesystem import ParallelFileSystem
from ..jobs import JobSpec, MultiTenantResult, MultiTenantScheduler, make_arrivals
from .jsonlog import record_results
from .machines import MachineSpec, machine_by_name

__all__ = [
    "DEFAULT_JOB_COUNTS",
    "DEFAULT_RANK_COUNTS",
    "DEFAULT_SHAPE",
    "DEFAULT_SEED",
    "SMOKE_POINT",
    "MIXED_POINT",
    "MultiTenantPoint",
    "run_multitenant_point",
    "run_mixed_tenant_point",
    "run_saturation_sweep",
    "main",
]

#: The saturation sweep's grid: concurrency levels x per-job rank counts.
DEFAULT_JOB_COUNTS = (1, 4, 16)
DEFAULT_RANK_COUNTS = (4, 16)

#: Per-job workload shape (M x N bytes, column-wise with ghost columns).
DEFAULT_SHAPE = (32, 512)

#: Seed for the stochastic (poisson) arrival process; any fixed value keeps
#: the sweep deterministic run to run.
DEFAULT_SEED = 20030804

#: The CI smoke / perf-gate point: (jobs, ranks per job).
SMOKE_POINT = (4, 16)

#: The heterogeneous mix: (write jobs, read jobs, ranks per job), all
#: racing on one shared file under ``locking``.
MIXED_POINT = (2, 2, 8)


@dataclass
class MultiTenantPoint:
    """One sweep point: the scheduler result plus its jsonlog entries."""

    machine: MachineSpec
    n_jobs: int
    nprocs: int
    strategy: str
    result: MultiTenantResult
    #: Whether the cross-job write-atomicity verifier passed on every file.
    atomic_ok: bool
    #: Per-job entries (with ``job_id``) followed by the summary entry.
    entries: List[Dict] = field(default_factory=list)
    #: Overrides the derived experiment name (used by the mixed point).
    experiment_label: Optional[str] = None

    @property
    def summary(self) -> Dict:
        """The point's summary entry (fairness, offered load, wall clock)."""
        return self.entries[-1]

    @property
    def experiment(self) -> str:
        """The jsonlog experiment name this point files under."""
        if self.experiment_label is not None:
            return self.experiment_label
        return (
            f"multitenant/{self.machine.file_system.lower()}"
            f"/j{self.n_jobs}xp{self.nprocs}"
        )


def _specs_for_point(
    n_jobs: int,
    nprocs: int,
    strategy: str,
    shape: Tuple[int, int],
    shared_file: bool,
) -> List[JobSpec]:
    M, N = shape
    specs = []
    for i in range(n_jobs):
        filename = "/multitenant/shared.dat" if shared_file else f"/multitenant/job{i}.dat"
        specs.append(
            JobSpec(
                job_id=f"job{i}",
                nprocs=nprocs,
                M=M,
                N=N,
                filename=filename,
                mode="write",
                strategy=strategy,
            )
        )
    return specs


def run_multitenant_point(
    machine: MachineSpec,
    n_jobs: int,
    nprocs: int,
    strategy: str = "two-phase",
    arrival_kind: str = "staggered",
    shape: Tuple[int, int] = DEFAULT_SHAPE,
    shared_file: bool = True,
    seed: int = DEFAULT_SEED,
    timeout: Optional[float] = 120.0,
) -> MultiTenantPoint:
    """Run one (jobs x ranks) point and build its jsonlog entries.

    All jobs write; with ``shared_file`` they race on one file (the
    contended, atomicity-relevant configuration), otherwise each gets a
    private file (pure server/link contention).  The write-atomicity
    verifier runs across every file jobs touched.
    """
    fs = ParallelFileSystem(machine.make_fs_config())
    scheduler = MultiTenantScheduler(fs, timeout=timeout)
    specs = _specs_for_point(n_jobs, nprocs, strategy, shape, shared_file)
    arrivals = make_arrivals(arrival_kind, n_jobs, seed=seed)
    result = scheduler.run(specs, arrivals=arrivals)

    atomic_ok = all(
        result.verify_write_atomicity(filename).ok
        for filename in sorted({s.filename for s in specs})
    )

    entries: List[Dict] = [
        {
            "P": nprocs,
            "strategy": strategy,
            "makespan": job.makespan,
            "bytes": job.bytes_requested,
            "job_id": job.spec.job_id,
            "offered_load": result.offered_load,
        }
        for job in result.jobs
    ]
    entries.append(
        {
            "P": n_jobs * nprocs,
            "strategy": strategy,
            "makespan": result.summary["max_makespan"],
            "bytes": result.total_bytes_requested,
            "wall_seconds": result.wall_seconds,
            "ops": n_jobs * nprocs,
            "offered_load": result.offered_load,
            "fairness": result.fairness,
        }
    )
    return MultiTenantPoint(
        machine=machine,
        n_jobs=n_jobs,
        nprocs=nprocs,
        strategy=strategy,
        result=result,
        atomic_ok=atomic_ok,
        entries=entries,
    )


def run_mixed_tenant_point(
    machine: MachineSpec,
    n_writers: int,
    n_readers: int,
    nprocs: int,
    strategy: str = "locking",
    arrival_kind: str = "staggered",
    shape: Tuple[int, int] = DEFAULT_SHAPE,
    seed: int = DEFAULT_SEED,
    timeout: Optional[float] = 120.0,
) -> MultiTenantPoint:
    """The heterogeneous point: write jobs racing read jobs on one file.

    This is the ROADMAP follow-on from the scheduler PR: the workload
    mixes producers and observers, so plain write atomicity is not
    enough — every read job's delivered bytes must additionally be
    explainable by *some* serial order of the racing writes.  The read
    jobs' observations go through the cross-group stream verifier
    (:meth:`~repro.jobs.MultiTenantResult.verify_read_atomicity`, backed
    by :func:`~repro.verify.atomicity.check_stream_atomicity`): a torn
    or stale byte anywhere marks the point ``atomic_ok = False``.  The
    default strategy is ``locking`` because that is the only discipline
    the paper (and this simulator) grants cross-job read serialisability.
    """
    M, N = shape
    filename = "/multitenant/shared.dat"
    fs = ParallelFileSystem(machine.make_fs_config())
    scheduler = MultiTenantScheduler(fs, timeout=timeout)
    specs = [
        JobSpec(
            job_id=f"writer{i}", nprocs=nprocs, M=M, N=N,
            filename=filename, mode="write", strategy=strategy,
        )
        for i in range(n_writers)
    ] + [
        JobSpec(
            job_id=f"reader{i}", nprocs=nprocs, M=M, N=N,
            filename=filename, mode="read", strategy=strategy,
        )
        for i in range(n_readers)
    ]
    arrivals = make_arrivals(arrival_kind, len(specs), seed=seed)
    result = scheduler.run(specs, arrivals=arrivals)

    atomic_ok = (
        result.verify_write_atomicity(filename).ok
        and result.verify_read_atomicity(filename, baseline=bytes(M * N)).ok
    )

    n_jobs = n_writers + n_readers
    entries: List[Dict] = [
        {
            "P": nprocs,
            "strategy": strategy,
            "makespan": job.makespan,
            "bytes": job.bytes_requested,
            "job_id": job.spec.job_id,
            "offered_load": result.offered_load,
        }
        for job in result.jobs
    ]
    entries.append(
        {
            "P": n_jobs * nprocs,
            "strategy": strategy,
            "makespan": result.summary["max_makespan"],
            "bytes": result.total_bytes_requested,
            "wall_seconds": result.wall_seconds,
            "ops": n_jobs * nprocs,
            "offered_load": result.offered_load,
            "fairness": result.fairness,
        }
    )
    label = (
        f"multitenant/{machine.file_system.lower()}"
        f"/mixed-w{n_writers}r{n_readers}xp{nprocs}"
    )
    return MultiTenantPoint(
        machine=machine,
        n_jobs=n_jobs,
        nprocs=nprocs,
        strategy=strategy,
        result=result,
        atomic_ok=atomic_ok,
        entries=entries,
        experiment_label=label,
    )


def run_saturation_sweep(
    machine: MachineSpec,
    job_counts: Sequence[int] = DEFAULT_JOB_COUNTS,
    rank_counts: Sequence[int] = DEFAULT_RANK_COUNTS,
    strategy: str = "two-phase",
    arrival_kind: str = "staggered",
    seed: int = DEFAULT_SEED,
) -> List[MultiTenantPoint]:
    """The full grid: every concurrency level at every per-job rank count."""
    return [
        run_multitenant_point(
            machine, n_jobs, nprocs,
            strategy=strategy, arrival_kind=arrival_kind, seed=seed,
        )
        for n_jobs in job_counts
        for nprocs in rank_counts
    ]


def _parse_counts(text: str) -> Tuple[int, ...]:
    return tuple(int(part) for part in text.split(",") if part)


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; exits non-zero on an atomicity or budget failure."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--machine", default="IBM SP")
    parser.add_argument("--jobs", default=",".join(map(str, DEFAULT_JOB_COUNTS)),
                        help="comma-separated concurrency levels")
    parser.add_argument("--ranks", default=",".join(map(str, DEFAULT_RANK_COUNTS)),
                        help="comma-separated per-job rank counts")
    parser.add_argument("--strategy", default="two-phase")
    parser.add_argument("--arrival", default="staggered",
                        help="arrival process: batch, staggered or poisson")
    parser.add_argument("--seed", type=int, default=DEFAULT_SEED)
    parser.add_argument("--budget", type=float, default=None,
                        help="host wall-clock budget (seconds) over the whole sweep")
    parser.add_argument("--smoke", action="store_true",
                        help=f"run only the CI smoke point {SMOKE_POINT} "
                             f"(plus the mixed point {MIXED_POINT})")
    parser.add_argument("--skip-mixed", action="store_true",
                        help="skip the write-vs-read mixed-tenant point")
    args = parser.parse_args(list(argv) if argv is not None else None)

    machine = machine_by_name(args.machine)
    if args.smoke:
        job_counts, rank_counts = (SMOKE_POINT[0],), (SMOKE_POINT[1],)
    else:
        job_counts, rank_counts = _parse_counts(args.jobs), _parse_counts(args.ranks)

    points = run_saturation_sweep(
        machine, job_counts, rank_counts,
        strategy=args.strategy, arrival_kind=args.arrival, seed=args.seed,
    )
    if not args.skip_mixed:
        n_writers, n_readers, mixed_ranks = MIXED_POINT
        points.append(
            run_mixed_tenant_point(
                machine, n_writers, n_readers, mixed_ranks,
                arrival_kind=args.arrival, seed=args.seed,
            )
        )
    problems: List[str] = []
    total_wall = 0.0
    for point in points:
        record_results(point.experiment, point.entries)
        summary = point.summary
        total_wall += summary["wall_seconds"]
        print(
            f"{point.experiment}: offered {summary['offered_load']:.0f} B, "
            f"p50 {point.result.summary['p50_makespan']:.6f}s, "
            f"p99 {point.result.summary['p99_makespan']:.6f}s, "
            f"fairness {summary['fairness']:.4f}, "
            f"bandwidth {point.result.bandwidth / 1e6:.2f} MB/s, "
            f"wall {summary['wall_seconds']:.2f}s"
        )
        if not point.atomic_ok:
            problems.append(
                f"{point.experiment}: cross-job atomicity violated"
            )
    if args.budget is not None and total_wall > args.budget:
        problems.append(
            f"sweep wall clock {total_wall:.2f}s exceeds the "
            f"{args.budget:.2f}s budget"
        )
    for problem in problems:
        print(f"FAIL: {problem}")
    if problems:
        return 1
    print(f"multitenant sweep ok ({len(points)} points, wall {total_wall:.2f}s)")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via CI
    sys.exit(main())
