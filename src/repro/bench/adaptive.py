"""Adaptive collective I/O benchmarks: ``auto`` vs the statics, and the
N-timestep repeated-collective workload that amortises the plan cache.

Two experiment families:

* :func:`run_adaptive_sweep` — the adaptive-vs-static grid.  Every point of a
  (machine × pattern × P) grid is measured under each applicable static
  strategy *and* under ``auto``; the CI gate
  (:func:`repro.bench.perfgate.check_adaptive`) then asserts that ``auto`` is
  never worse than the best static by more than 10% anywhere and strictly
  beats every static somewhere.

* :func:`run_adaptive_read_sweep` — the same grid idea on the read path:
  every (machine × pattern × P) point of the read grid is seeded once and
  read back under each read-capable static and ``auto``, gated by
  ``check_adaptive`` under the ``perfgate/adaptive-read/`` prefix.

* :func:`run_repeated_collective` — the checkpoint-every-timestep workload:
  one file, one fixed view per rank, ``steps`` collective writes with fresh
  data each step.  From step 2 on, the ``auto`` strategy's cross-collective
  plan cache replays the exchanged views, the classification and the tuning
  decision instead of re-shipping and re-analysing them; per-step virtual
  finish times are recorded so the amortisation curve (first step cold,
  steps 2..N warm) can be plotted, and the wall clock per simulated op is
  what the plan-cache perf gate compares against a ``plan_cache=false`` run.

Both report through the standard :class:`~repro.bench.results.ExperimentRecord`
/ JSON-artifact pipeline (``python -m repro.bench.adaptive`` writes
``benchmarks/results/latest.json`` entries under ``adaptive/...``).
"""

from __future__ import annotations

import sys
import time
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.autotune import AutoStrategy, peek_record
from ..core.executor import AtomicWriteExecutor
from ..core.overlap import overlapped_bytes_total
from ..core.regions import FileRegionSet
from ..core.registry import default_registry
from ..fs.client import FSClient
from ..fs.filesystem import ParallelFileSystem
from ..mpi.comm import CommCostModel, Communicator
from ..mpi.runtime import run_spmd
from ..patterns.partition import views_for_pattern
from ..patterns.workloads import PAPER_OVERLAP_COLUMNS, rank_pattern_bytes
from ..verify.atomicity import check_mpi_atomicity
from .harness import (
    run_column_wise_experiment,
    run_read_experiment,
    strategies_for_machine,
)
from .jsonlog import entries_from_records, record_results
from .machines import MachineSpec, machine_by_name
from .results import ExperimentRecord, ResultTable

__all__ = [
    "ADAPTIVE_GRID",
    "ADAPTIVE_READ_GRID",
    "REPEATED_POINT",
    "repeated_filename",
    "run_repeated_collective",
    "run_adaptive_sweep",
    "run_adaptive_read_sweep",
    "outcome_fingerprint",
    "fingerprint_of",
    "main",
]


def repeated_filename(
    machine: MachineSpec, M: int, N: int, nprocs: int, label: str
) -> str:
    """The file a repeated-collective run writes (for later inspection)."""
    return f"{machine.file_system.lower()}_{M}x{N}_p{nprocs}_{label}_repeated.dat"

#: The gated adaptive-vs-static grid: (machine, pattern, P) points covering a
#: locking machine and the lockless ENFS, the paper's column-wise partitioning
#: and the 2-D block-block one.  Sizes follow the 32 MB panel at the standard
#: ``DEFAULT_ROW_SCALE`` (M=64, N=8192).  The P∈{64, 256} points sit past the
#: hint engine's hierarchical threshold, so the ``two-phase-hier`` rule is
#: exercised (and gated) on both machines, not just the flat small-P régime.
ADAPTIVE_GRID: Tuple[Tuple[str, str, int], ...] = (
    ("Origin 2000", "column-wise", 4),
    ("Origin 2000", "column-wise", 16),
    ("Origin 2000", "block-block", 8),
    ("Cplant", "column-wise", 8),
    ("Cplant", "block-block", 16),
    ("Cplant", "column-wise", 64),
    ("Origin 2000", "column-wise", 256),
)
_GRID_SHAPE = (64, 8192)  # M x N at row scale 64 of the 32 MB panel

#: The read-side twin of :data:`ADAPTIVE_GRID`: every point is measured under
#: each read-capable static and ``auto`` via the read-back harness
#: (:func:`repro.bench.harness.run_read_experiment`), and gated the same way
#: (auto within 10% of the best static everywhere, strictly ahead somewhere).
#: The small-P points pin the fetch-parallel flat rule (two aggregators per
#: I/O server), the P∈{64, 256} points the hierarchical read régime.
ADAPTIVE_READ_GRID: Tuple[Tuple[str, str, int], ...] = (
    ("Origin 2000", "column-wise", 16),
    ("Origin 2000", "block-block", 8),
    ("Cplant", "column-wise", 8),
    ("Cplant", "block-block", 16),
    ("Cplant", "column-wise", 64),
    ("Origin 2000", "column-wise", 256),
)

#: The repeated-collective point: P ranks re-writing the same column-wise
#: views for `steps` timesteps.  Sized so a warm step's saved work (P view
#: payloads, P region rebuilds, classification, sweep-line) is large enough
#: to measure in wall clock.
REPEATED_POINT = ("Origin 2000", "column-wise", 16, 256, 4096, 6)  # machine, pattern, P, M, N, steps


def run_repeated_collective(
    machine: MachineSpec | str,
    M: int,
    N: int,
    nprocs: int,
    steps: int,
    strategy: str = "auto",
    pattern: str = "column-wise",
    overlap_columns: int = PAPER_OVERLAP_COLUMNS,
    plan_cache: bool = True,
    verify: bool = True,
    array_label: Optional[str] = None,
    fs: Optional[ParallelFileSystem] = None,
) -> ExperimentRecord:
    """Measure ``steps`` repeated collective writes of one fixed partitioning.

    Every step writes fresh rank-identifying data through the same views —
    the checkpoint-every-timestep workload.  The returned record covers the
    whole run (``phases=steps``, so the wall-clock gate's per-op cost is per
    collective-step-rank); ``extra`` carries the first-step and mean warm-step
    virtual times plus, for ``auto``, the plan-cache hit/miss counters.

    ``strategy="auto"`` with ``plan_cache=False`` is reported under the
    strategy label ``auto-nocache`` so both variants of the same point can
    coexist in one results table.
    """
    if steps < 2:
        raise ValueError("a repeated-collective run needs at least 2 steps")
    if isinstance(machine, str):
        machine = machine_by_name(machine)
    if fs is None:
        fs = ParallelFileSystem(machine.make_fs_config())
    if strategy == "auto":
        strat = AutoStrategy(plan_cache=plan_cache)
        label = "auto" if plan_cache else "auto-nocache"
    else:
        strat = default_registry.create(strategy)
        label = strategy
    filename = repeated_filename(machine, M, N, nprocs, label)
    bind = getattr(strat, "bind_context", None)
    if bind is not None:
        bind(fs, filename)
    fobj = fs.create(filename)
    views = views_for_pattern(pattern, M, N, nprocs, overlap_columns)
    regions = [FileRegionSet(rank, views[rank]) for rank in range(nprocs)]

    def rank_main(comm: Communicator):
        rank = comm.rank
        region = regions[rank]
        client = FSClient(fs, client_id=rank, clock=comm.clock)
        handle = client.open(filename, create=False)
        outcomes = []
        finish_times = []
        wall_marks = []
        try:
            for step in range(steps):
                data = rank_pattern_bytes(rank + step * nprocs, region.total_bytes)
                outcomes.append(strat.execute_write(comm, handle, region, data))
                finish_times.append(comm.clock.now)
                wall_marks.append(time.process_time())
        finally:
            handle.close()
        return outcomes, finish_times, wall_marks

    wall_start = time.perf_counter()
    cpu_start = time.process_time()
    spmd = run_spmd(
        rank_main, nprocs, comm_cost=CommCostModel(latency=30e-6, byte_cost=1e-8)
    )
    wall_seconds = time.perf_counter() - wall_start
    atomic_ok = True
    if verify and strat.provides_atomicity:
        # Every step is a complete atomic collective; the final state is the
        # last step's outcome and must satisfy MPI atomicity on its own.
        atomic_ok = check_mpi_atomicity(fobj.store, regions).ok
    # Per-step virtual finish times: the step's makespan is the slowest
    # rank's finish; step costs are the deltas.  The wall marks give the same
    # per-step breakdown in host time — measured *within* one run, so the
    # cold-vs-warm comparison is immune to run-to-run scheduler noise.
    step_ends = [
        max(times[step] for _, times, _ in spmd.returns) for step in range(steps)
    ]
    wall_ends = [
        max(marks[step] for _, _, marks in spmd.returns) for step in range(steps)
    ]
    first_step = step_ends[0]
    warm_mean = (step_ends[-1] - step_ends[0]) / (steps - 1)
    extra: Dict[str, float] = {
        "wall_seconds": wall_seconds,
        "steps": float(steps),
        "first_step_seconds": first_step,
        "warm_step_seconds": warm_mean,
        "first_step_cpu": wall_ends[0] - cpu_start,
        "warm_step_cpu": (wall_ends[-1] - wall_ends[0]) / (steps - 1),
    }
    selected = None
    decision = getattr(strat, "last_decision", None)
    if decision is not None:
        selected = decision.strategy
        extra.update(decision.hints())
        record = peek_record(fs, filename)
        if record is not None:
            extra["plan_hits"] = float(record.hits)
            extra["plan_misses"] = float(record.misses)
            # Resolution CPU per simulated op (rank-collective), split by
            # cache verdict: the direct host-time measure of what a plan-cache
            # hit saves — robust against simulator/scheduler noise because it
            # times only the work the cache elides.
            if record.misses:
                extra["resolve_cold_cpu_per_op"] = record.cold_cpu / (
                    record.misses * nprocs
                )
            if record.hits:
                extra["resolve_warm_cpu_per_op"] = record.warm_cpu / (
                    record.hits * nprocs
                )
    outcomes = [o for outs, _, _ in spmd.returns for o in outs]
    return ExperimentRecord(
        machine=machine.name,
        file_system=machine.file_system,
        array_label=array_label or f"{M}x{N}x{steps}",
        M=M,
        N=N,
        nprocs=nprocs,
        strategy=label,
        bytes_requested=sum(o.bytes_requested for o in outcomes),
        bytes_written=sum(o.bytes_written for o in outcomes),
        makespan_seconds=spmd.makespan,
        atomic_ok=atomic_ok,
        overlap_bytes=overlapped_bytes_total(regions),
        phases=steps,
        pattern=pattern,
        extra=extra,
        selected_strategy=selected,
    )


def outcome_fingerprint(
    machine: MachineSpec | str,
    M: int,
    N: int,
    nprocs: int,
    steps: int,
    plan_cache: bool,
    pattern: str = "column-wise",
) -> Tuple[bytes, Tuple[int, ...]]:
    """Bytes + provenance a repeated-collective ``auto`` run leaves behind.

    Runs :func:`run_repeated_collective` on a *private* file system and
    returns the final file contents and the per-byte writer provenance — the
    identity the plan-cache gate compares between ``plan_cache`` on and off
    (a cached plan replaying different bytes than the cold path would be a
    correctness bug, not a performance trade-off).
    """
    if isinstance(machine, str):
        machine = machine_by_name(machine)
    fs = ParallelFileSystem(machine.make_fs_config())
    record = run_repeated_collective(
        machine, M, N, nprocs, steps, plan_cache=plan_cache, pattern=pattern, fs=fs
    )
    label = "auto" if plan_cache else "auto-nocache"
    assert record.atomic_ok
    return fingerprint_of(fs, repeated_filename(machine, M, N, nprocs, label))


def fingerprint_of(fs: ParallelFileSystem, filename: str) -> Tuple[bytes, Tuple[int, ...]]:
    """Final bytes and per-byte writer provenance of ``filename`` on ``fs``."""
    fobj = fs.lookup(filename)
    size = fobj.store.size
    return (
        fobj.store.read(0, size),
        tuple(int(w) for w in fobj.store.writers(0, size)),
    )


def run_adaptive_sweep(
    grid: Sequence[Tuple[str, str, int]] = ADAPTIVE_GRID,
    shape: Tuple[int, int] = _GRID_SHAPE,
    verify: bool = False,
) -> ResultTable:
    """Measure every grid point under each applicable static and ``auto``."""
    M, N = shape
    table = ResultTable()
    for machine_name, pattern, nprocs in grid:
        spec = machine_by_name(machine_name)
        for strategy in strategies_for_machine(
            spec, default_registry.atomic_names()
        ):
            table.add(
                run_column_wise_experiment(
                    spec,
                    M,
                    N,
                    nprocs,
                    strategy,
                    pattern=pattern,
                    verify=verify,
                    array_label=f"{M}x{N}",
                )
            )
    return table


def run_adaptive_read_sweep(
    grid: Sequence[Tuple[str, str, int]] = ADAPTIVE_READ_GRID,
    shape: Tuple[int, int] = _GRID_SHAPE,
    verify: bool = False,
) -> ResultTable:
    """Measure every read grid point under each read-capable static + ``auto``.

    The read-side counterpart of :func:`run_adaptive_sweep`: the file is
    seeded once per point by the harness, then read back collectively under
    every strategy.  ``auto`` rows carry the ``selected`` delegate and the
    derived ``cb_*``/``read_ahead`` hints for the jsonlog.
    """
    M, N = shape
    table = ResultTable()
    for machine_name, pattern, nprocs in grid:
        spec = machine_by_name(machine_name)
        for strategy in strategies_for_machine(
            spec, default_registry.read_capable_names()
        ):
            table.add(
                run_read_experiment(
                    machine_name,
                    M,
                    N,
                    nprocs,
                    strategy,
                    pattern=pattern,
                    verify=verify,
                    array_label=f"{M}x{N}",
                )
            )
    return table


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI: run the adaptive sweep + the repeated-collective pair, print and
    record the results (``adaptive/...`` entries in ``latest.json``)."""
    args = list(argv) if argv is not None else sys.argv[1:]
    quick = "--quick" in args

    table = run_adaptive_sweep(ADAPTIVE_GRID[:2] if quick else ADAPTIVE_GRID)
    print(table.to_text("Adaptive vs static (column-wise/block-block grid)"))
    record_results("adaptive/sweep", entries_from_records(table.records))

    read_table = run_adaptive_read_sweep(
        ADAPTIVE_READ_GRID[:2] if quick else ADAPTIVE_READ_GRID
    )
    print(read_table.to_text("Adaptive vs static, read-back grid"))
    record_results("adaptive/read-sweep", entries_from_records(read_table.records))

    machine, pattern, P, M, N, steps = REPEATED_POINT
    repeated: List[ExperimentRecord] = []
    for strategy, plan_cache in (("auto", True), ("auto", False), ("two-phase", True)):
        repeated.append(
            run_repeated_collective(
                machine, M, N, P, steps,
                strategy=strategy, pattern=pattern, plan_cache=plan_cache,
            )
        )
    rep_table = ResultTable(repeated)
    print(rep_table.to_text(f"Repeated collective ({steps} steps)"))
    for rec in repeated:
        if rec.strategy.startswith("auto"):
            print(
                f"  {rec.strategy}: first step {rec.extra['first_step_seconds']:.6f}s, "
                f"warm step {rec.extra['warm_step_seconds']:.6f}s, "
                f"plan hits {rec.extra.get('plan_hits', 0):.0f}/"
                f"{rec.extra.get('plan_hits', 0) + rec.extra.get('plan_misses', 0):.0f}"
            )
    record_results("adaptive/repeated", entries_from_records(repeated))
    print("adaptive benchmark recorded")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via CI
    sys.exit(main())
