"""Experiment driver for the paper's evaluation (Figure 8).

:func:`run_column_wise_experiment` measures one point: a column-wise
partitioned concurrent overlapping write of an ``M x N`` byte array by ``P``
processes on one machine personality under one atomicity strategy, returning
an :class:`~repro.bench.results.ExperimentRecord` with the virtual-time
bandwidth and an atomicity verdict.

:func:`run_figure8_grid` sweeps the full grid the paper reports — three
machines × three array sizes × P ∈ {4, 8, 16} × the applicable strategies —
and returns a :class:`~repro.bench.results.ResultTable`.  On Cplant/ENFS the
locking strategy is skipped (no lock support), as in the paper.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

from ..core.executor import AtomicWriteExecutor
from ..core.overlap import overlapped_bytes_total
from ..core.regions import FileRegionSet
from ..core.strategies import strategy_by_name
from ..fs.filesystem import ParallelFileSystem
from ..mpi.comm import CommCostModel
from ..patterns.partition import column_wise_views
from ..patterns.workloads import (
    PAPER_ARRAY_SIZES,
    PAPER_OVERLAP_COLUMNS,
    PAPER_PROCESS_COUNTS,
    rank_fill_bytes,
)
from ..verify.atomicity import check_mpi_atomicity
from .machines import ALL_MACHINES, MachineSpec, machine_by_name
from .results import ExperimentRecord, ResultTable

__all__ = [
    "DEFAULT_ROW_SCALE",
    "run_column_wise_experiment",
    "run_figure8_grid",
    "strategies_for_machine",
]

#: Default divisor applied to the paper's 4096-row arrays so the full grid
#: (3 machines x 3 sizes x 3 process counts x 3 strategies) completes in
#: seconds.  Row counts scale the number of per-rank segments; the relative
#: behaviour of the strategies is unchanged (see EXPERIMENTS.md).
DEFAULT_ROW_SCALE = 64


def strategies_for_machine(machine: MachineSpec, strategies: Sequence[str]) -> List[str]:
    """Drop the locking strategy on machines without lock support (ENFS)."""
    out = []
    for s in strategies:
        if s == "locking" and not machine.supports_locking:
            continue
        out.append(s)
    return out


def run_column_wise_experiment(
    machine: MachineSpec | str,
    M: int,
    N: int,
    nprocs: int,
    strategy: str,
    overlap_columns: int = PAPER_OVERLAP_COLUMNS,
    array_label: Optional[str] = None,
    verify: bool = True,
) -> ExperimentRecord:
    """Measure one (machine, size, P, strategy) point of Figure 8."""
    if isinstance(machine, str):
        machine = machine_by_name(machine)
    fs = ParallelFileSystem(machine.make_fs_config())
    strat = strategy_by_name(strategy)
    executor = AtomicWriteExecutor(
        fs,
        strat,
        filename=f"{machine.file_system.lower()}_{M}x{N}_p{nprocs}_{strategy}.dat",
        comm_cost=CommCostModel(latency=30e-6, byte_cost=1e-8),
    )
    views = column_wise_views(M, N, nprocs, overlap_columns)
    result = executor.run(
        nprocs,
        view_factory=lambda rank, _P: views[rank],
        data_factory=rank_fill_bytes,
    )
    regions = result.regions
    atomic_ok = True
    if verify and strategy != "none":
        report = check_mpi_atomicity(result.file.store, regions)
        atomic_ok = report.ok
    overlap_bytes = overlapped_bytes_total(regions)
    lock_waits = 0
    lm = result.file.lock_manager
    if lm is not None and hasattr(lm, "wait_count"):
        lock_waits = lm.wait_count
    phases = max(o.phases for o in result.outcomes)
    return ExperimentRecord(
        machine=machine.name,
        file_system=machine.file_system,
        array_label=array_label or f"{M}x{N}",
        M=M,
        N=N,
        nprocs=nprocs,
        strategy=strategy,
        bytes_requested=result.total_bytes_requested,
        bytes_written=result.total_bytes_written,
        makespan_seconds=result.makespan,
        atomic_ok=atomic_ok,
        overlap_bytes=overlap_bytes,
        phases=phases,
        lock_waits=lock_waits,
    )


def run_figure8_grid(
    machines: Optional[Iterable[MachineSpec | str]] = None,
    array_labels: Optional[Sequence[str]] = None,
    process_counts: Sequence[int] = PAPER_PROCESS_COUNTS,
    strategies: Sequence[str] = ("locking", "graph-coloring", "rank-ordering"),
    row_scale: int = DEFAULT_ROW_SCALE,
    overlap_columns: int = PAPER_OVERLAP_COLUMNS,
    verify: bool = True,
) -> ResultTable:
    """Sweep the full Figure 8 grid and return every measured point.

    ``row_scale`` divides the paper's 4096-row arrays (see
    :data:`DEFAULT_ROW_SCALE`); pass 1 to run the paper's exact shapes.
    """
    if machines is None:
        machines = ALL_MACHINES
    if array_labels is None:
        array_labels = list(PAPER_ARRAY_SIZES)
    table = ResultTable()
    for machine in machines:
        spec = machine_by_name(machine) if isinstance(machine, str) else machine
        for label in array_labels:
            M, N = PAPER_ARRAY_SIZES[label]
            if M % row_scale != 0:
                raise ValueError(f"row_scale {row_scale} does not divide M={M}")
            M_scaled = M // row_scale
            for nprocs in process_counts:
                for strategy in strategies_for_machine(spec, strategies):
                    record = run_column_wise_experiment(
                        spec,
                        M_scaled,
                        N,
                        nprocs,
                        strategy,
                        overlap_columns=overlap_columns,
                        array_label=label,
                        verify=verify,
                    )
                    table.add(record)
    return table
