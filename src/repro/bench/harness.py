"""Experiment driver for the paper's evaluation (Figure 8) and the read and
mixed read/write extensions.

:func:`run_column_wise_experiment` measures one point: a partitioned
concurrent overlapping write of an ``M x N`` byte array by ``P`` processes on
one machine personality under one atomicity strategy, returning an
:class:`~repro.bench.results.ExperimentRecord` with the virtual-time
bandwidth and an atomicity verdict.  The paper's evaluation is column-wise
(the default ``pattern``); the harness can also sweep the row-wise and
block-block partitionings of Figures 1 and 3.

:func:`run_figure8_grid` sweeps the full grid the paper reports — three
machines × three array sizes × P ∈ {4, 8, 16} × the applicable strategies —
and returns a :class:`~repro.bench.results.ResultTable`.  Strategies come
from the central registry (:mod:`repro.core.registry`): by default every
registered atomicity-providing strategy runs, and strategies that need
byte-range locks are skipped on machines without lock support (Cplant/ENFS),
as in the paper.

The read side mirrors this: :func:`run_read_experiment` measures a collective
overlapping *read* of a previously checkpointed array under one strategy's
staged read pipeline (verifying read atomicity from the delivered streams),
:func:`run_read_sweep` sweeps it over strategies and process counts, and
:func:`run_mixed_experiment` races a writer group against a reader group on
the same file under byte-range locking, which is the one strategy that
serialises two *independent* concurrent operations.
"""

from __future__ import annotations

import time
from typing import Iterable, List, Optional, Sequence, Tuple

from ..core.bulk import BulkReadExecutor, BulkWriteExecutor
from ..core.executor import AtomicWriteExecutor, CollectiveReadExecutor
from ..core.overlap import overlapped_bytes_total
from ..core.regions import FileRegionSet
from ..core.registry import default_registry
from ..patterns.partition import views_for_pattern
from ..fs.client import FSClient
from ..fs.filesystem import ParallelFileSystem
from ..mpi.comm import CommCostModel, Communicator
from ..mpi.runtime import run_spmd
from ..patterns.workloads import (
    PAPER_ARRAY_SIZES,
    PAPER_OVERLAP_COLUMNS,
    PAPER_PROCESS_COUNTS,
    rank_fill_bytes,
    rank_pattern_bytes,
)
from ..verify.atomicity import ReadObservation, check_mpi_atomicity, check_read_atomicity
from .machines import ALL_MACHINES, MachineSpec, machine_by_name
from .results import ExperimentRecord, ResultTable

__all__ = [
    "DEFAULT_ROW_SCALE",
    "run_column_wise_experiment",
    "run_figure8_grid",
    "run_read_experiment",
    "run_read_sweep",
    "run_mixed_experiment",
    "strategies_for_machine",
]

#: Default divisor applied to the paper's 4096-row arrays so the full grid
#: (3 machines x 3 sizes x 3 process counts x the registered strategies)
#: completes in seconds.  Row counts scale the number of per-rank segments;
#: the relative behaviour of the strategies is unchanged (see EXPERIMENTS.md).
DEFAULT_ROW_SCALE = 64


def strategies_for_machine(machine: MachineSpec, strategies: Sequence[str]) -> List[str]:
    """Drop strategies whose registered capabilities the machine lacks.

    Today that means lock-requiring strategies on machines without byte-range
    locking (ENFS), exactly as in the paper; the filter reads the capability
    off the registered class rather than hard-coding strategy names.
    """
    return [
        s for s in strategies
        if default_registry.supported_on(s, machine.supports_locking)
    ]


def run_column_wise_experiment(
    machine: MachineSpec | str,
    M: int,
    N: int,
    nprocs: int,
    strategy: str,
    overlap_columns: int = PAPER_OVERLAP_COLUMNS,
    array_label: Optional[str] = None,
    verify: bool = True,
    pattern: str = "column-wise",
    executor: str = "engine",
    strategy_options: Optional[dict] = None,
) -> ExperimentRecord:
    """Measure one (machine, size, P, strategy) point of Figure 8.

    ``pattern`` selects the partitioning (``column-wise`` — the paper's
    evaluation and the default — ``row-wise`` or ``block-block``);
    ``overlap_columns`` is the ghost width ``R`` of the chosen pattern.

    ``executor`` selects the execution substrate: ``"engine"`` (the
    cooperative event engine, any strategy) or ``"bulk"`` (the
    bulk-synchronous replay of :mod:`repro.core.bulk` — aggregation
    strategies only, bit-identical virtual times, tens of thousands of
    ranks in seconds).  ``strategy_options`` are keyword arguments for the
    strategy's constructor (e.g. ``num_aggregators``, ``ranks_per_node``).
    """
    if executor not in ("engine", "bulk"):
        raise ValueError(f"unknown executor {executor!r}; known: engine, bulk")
    if isinstance(machine, str):
        machine = machine_by_name(machine)
    fs = ParallelFileSystem(machine.make_fs_config())
    strat = default_registry.create(strategy, **(strategy_options or {}))
    executor_cls = AtomicWriteExecutor if executor == "engine" else BulkWriteExecutor
    executor = executor_cls(
        fs,
        strat,
        filename=f"{machine.file_system.lower()}_{M}x{N}_p{nprocs}_{strategy}.dat",
        comm_cost=CommCostModel(latency=30e-6, byte_cost=1e-8),
    )
    views = views_for_pattern(pattern, M, N, nprocs, overlap_columns)
    wall_start = time.perf_counter()
    result = executor.run(
        nprocs,
        view_factory=lambda rank, _P: views[rank],
        data_factory=rank_fill_bytes,
    )
    wall_seconds = time.perf_counter() - wall_start
    regions = result.regions
    atomic_ok = True
    if verify and strat.provides_atomicity:
        report = check_mpi_atomicity(result.file.store, regions)
        atomic_ok = report.ok
    overlap_bytes = overlapped_bytes_total(regions)
    lock_waits = 0
    lm = result.file.lock_manager
    if lm is not None and hasattr(lm, "wait_count"):
        lock_waits = lm.wait_count
    phases = max(o.phases for o in result.outcomes)
    extra = {"wall_seconds": wall_seconds}
    selected = None
    decision = getattr(strat, "last_decision", None)
    if decision is not None:
        # The adaptive tuner exposes what it chose; record the concrete
        # delegate and the derived cb_* hints alongside the measurement.
        selected = decision.strategy
        extra.update(decision.hints())
    return ExperimentRecord(
        machine=machine.name,
        file_system=machine.file_system,
        array_label=array_label or f"{M}x{N}",
        M=M,
        N=N,
        nprocs=nprocs,
        strategy=strategy,
        bytes_requested=result.total_bytes_requested,
        bytes_written=result.total_bytes_written,
        makespan_seconds=result.makespan,
        atomic_ok=atomic_ok,
        overlap_bytes=overlap_bytes,
        phases=phases,
        lock_waits=lock_waits,
        pattern=pattern,
        extra=extra,
        selected_strategy=selected,
    )


def run_figure8_grid(
    machines: Optional[Iterable[MachineSpec | str]] = None,
    array_labels: Optional[Sequence[str]] = None,
    process_counts: Sequence[int] = PAPER_PROCESS_COUNTS,
    strategies: Optional[Sequence[str]] = None,
    row_scale: int = DEFAULT_ROW_SCALE,
    overlap_columns: int = PAPER_OVERLAP_COLUMNS,
    verify: bool = True,
    pattern: str = "column-wise",
) -> ResultTable:
    """Sweep the full Figure 8 grid and return every measured point.

    ``strategies`` defaults to every atomicity-providing strategy in the
    registry (including ``two-phase``); ``row_scale`` divides the paper's
    4096-row arrays (see :data:`DEFAULT_ROW_SCALE`); pass 1 to run the
    paper's exact shapes.
    """
    if machines is None:
        machines = ALL_MACHINES
    if array_labels is None:
        array_labels = list(PAPER_ARRAY_SIZES)
    if strategies is None:
        strategies = default_registry.atomic_names()
    table = ResultTable()
    for machine in machines:
        spec = machine_by_name(machine) if isinstance(machine, str) else machine
        for label in array_labels:
            M, N = PAPER_ARRAY_SIZES[label]
            if M % row_scale != 0:
                raise ValueError(f"row_scale {row_scale} does not divide M={M}")
            M_scaled = M // row_scale
            for nprocs in process_counts:
                for strategy in strategies_for_machine(spec, strategies):
                    record = run_column_wise_experiment(
                        spec,
                        M_scaled,
                        N,
                        nprocs,
                        strategy,
                        overlap_columns=overlap_columns,
                        array_label=label,
                        verify=verify,
                        pattern=pattern,
                    )
                    table.add(record)
    return table


def _checkpoint_file(
    fs: ParallelFileSystem,
    filename: str,
    M: int,
    N: int,
    nprocs: int,
    overlap_columns: int,
    pattern: str,
    executor: str = "engine",
) -> Tuple[List[FileRegionSet], List[bytes]]:
    """Seed ``filename`` with a completed atomic checkpoint write.

    The file is written under the two-phase strategy (runnable on every
    machine personality) with rank-identifying pattern data; returns the
    writer views and streams so a later read can be verified against them.
    ``executor="bulk"`` seeds via the bulk-synchronous write replay — the
    merged file bytes are identical to the engine path's, and it is the only
    substrate that reaches the extended read sweep's rank counts.  The bulk
    seed uses the hierarchical strategy (byte-identical to flat two-phase,
    pinned by ``tests/test_core_hierarchical.py``): the flat shuffle's dense
    per-source bookkeeping is O(P × aggregators) and would dominate the
    measured read at tens of thousands of ranks.
    """
    views = views_for_pattern(pattern, M, N, nprocs, overlap_columns)
    if executor == "engine":
        executor_cls = AtomicWriteExecutor
        seed_strategy = default_registry.create("two-phase")
    else:
        executor_cls = BulkWriteExecutor
        seed_strategy = default_registry.create(
            "two-phase-hier",
            num_aggregators=max(1, nprocs // 256),
            ranks_per_node=8,
        )
    executor = executor_cls(
        fs,
        seed_strategy,
        filename=filename,
        comm_cost=CommCostModel(latency=30e-6, byte_cost=1e-8),
    )
    streams: dict = {}

    def data_factory(rank: int, nbytes: int) -> bytes:
        streams[rank] = rank_pattern_bytes(rank, nbytes)
        return streams[rank]

    result = executor.run(
        nprocs,
        view_factory=lambda rank, _P: views[rank],
        data_factory=data_factory,
    )
    fs.reset_accounting()
    return result.regions, [streams[r] for r in range(nprocs)]


def run_read_experiment(
    machine: MachineSpec | str,
    M: int,
    N: int,
    nprocs: int,
    strategy: str,
    overlap_columns: int = PAPER_OVERLAP_COLUMNS,
    array_label: Optional[str] = None,
    verify: bool = True,
    pattern: str = "column-wise",
    executor: str = "engine",
    strategy_options: Optional[dict] = None,
) -> ExperimentRecord:
    """Measure one collective overlapping *read* point.

    The array is first checkpointed (an atomic two-phase write, not part of
    the measurement), then every rank reads its view of the chosen
    partitioning collectively under ``strategy``'s staged read pipeline.
    ``verify=True`` checks the delivered streams with
    :func:`~repro.verify.atomicity.check_read_atomicity`.

    ``executor`` selects the execution substrate — ``"engine"`` (cooperative
    event engine, any strategy) or ``"bulk"`` (the bulk-synchronous read
    replay of :mod:`repro.core.bulk`; aggregation strategies only,
    bit-identical virtual times, tens of thousands of ranks in seconds) —
    for both the checkpoint seed and the measured read.
    ``strategy_options`` are keyword arguments for the read strategy's
    constructor (e.g. ``num_aggregators``, ``ranks_per_node``).
    """
    if executor not in ("engine", "bulk"):
        raise ValueError(f"unknown executor {executor!r}; known: engine, bulk")
    if isinstance(machine, str):
        machine = machine_by_name(machine)
    fs = ParallelFileSystem(machine.make_fs_config())
    filename = f"{machine.file_system.lower()}_{M}x{N}_p{nprocs}_{strategy}_read.dat"
    write_regions, write_data = _checkpoint_file(
        fs, filename, M, N, nprocs, overlap_columns, pattern, executor=executor
    )
    strat = default_registry.create(strategy, **(strategy_options or {}))
    reader_cls = CollectiveReadExecutor if executor == "engine" else BulkReadExecutor
    reader = reader_cls(
        fs,
        strat,
        filename=filename,
        comm_cost=CommCostModel(latency=30e-6, byte_cost=1e-8),
    )
    # The restart reads the same partitioning the checkpoint wrote; reuse the
    # writers' already-built region sets instead of regenerating the views.
    wall_start = time.perf_counter()
    result = reader.run(
        nprocs, view_factory=lambda rank, _P: write_regions[rank].segments
    )
    wall_seconds = time.perf_counter() - wall_start
    atomic_ok = True
    if verify:
        observations = [
            ReadObservation(rank, result.regions[rank], result.data[rank])
            for rank in range(nprocs)
        ]
        atomic_ok = check_read_atomicity(observations, write_regions, write_data).ok
        # The checkpoint completed before the read began, so serialisability
        # admits exactly one state: every delivered stream must equal the
        # committed file contents — a reader returning the pre-write
        # baseline (which check_read_atomicity must accept for *racing*
        # workloads) would be a broken pipeline here.
        store = result.file.store
        atomic_ok = atomic_ok and all(
            result.data[rank]
            == b"".join(
                store.read(off, length)
                for _, off, length in result.regions[rank].buffer_map()
            )
            for rank in range(nprocs)
        )
    lock_waits = 0
    lm = result.file.lock_manager
    if lm is not None and hasattr(lm, "wait_count"):
        lock_waits = lm.wait_count
    extra = {
        "cache_hits": float(sum(o.cache_hits for o in result.outcomes)),
        "cache_misses": float(sum(o.cache_misses for o in result.outcomes)),
        "shuffled_bytes": float(sum(o.bytes_shuffled for o in result.outcomes)),
        "wall_seconds": wall_seconds,
    }
    selected = None
    decision = getattr(strat, "last_decision", None)
    if decision is not None:
        # The adaptive tuner exposes what it chose; record the concrete
        # delegate and the derived hints alongside the measurement.
        selected = decision.strategy
        extra.update(decision.hints())
    return ExperimentRecord(
        machine=machine.name,
        file_system=machine.file_system,
        array_label=array_label or f"{M}x{N}",
        M=M,
        N=N,
        nprocs=nprocs,
        strategy=strategy,
        bytes_requested=result.total_bytes_requested,
        bytes_written=result.total_bytes_read,
        makespan_seconds=result.makespan,
        atomic_ok=atomic_ok,
        overlap_bytes=overlapped_bytes_total(result.regions),
        phases=max(o.phases for o in result.outcomes),
        lock_waits=lock_waits,
        pattern=pattern,
        mode="read",
        extra=extra,
        selected_strategy=selected,
    )


def run_read_sweep(
    machines: Optional[Iterable[MachineSpec | str]] = None,
    array_labels: Optional[Sequence[str]] = None,
    process_counts: Sequence[int] = PAPER_PROCESS_COUNTS,
    strategies: Optional[Sequence[str]] = None,
    row_scale: int = DEFAULT_ROW_SCALE,
    overlap_columns: int = PAPER_OVERLAP_COLUMNS,
    verify: bool = True,
    pattern: str = "column-wise",
) -> ResultTable:
    """Sweep collective reads over machines × sizes × P × strategies.

    ``strategies`` defaults to every read-capable strategy in the registry,
    including the non-atomic baseline ``none`` — the naive per-rank read the
    staged pipeline replaces — so two-phase aggregation can be compared
    directly against it.
    """
    if machines is None:
        machines = ALL_MACHINES
    if array_labels is None:
        array_labels = list(PAPER_ARRAY_SIZES)
    if strategies is None:
        strategies = default_registry.read_capable_names()
    table = ResultTable()
    for machine in machines:
        spec = machine_by_name(machine) if isinstance(machine, str) else machine
        for label in array_labels:
            M, N = PAPER_ARRAY_SIZES[label]
            if M % row_scale != 0:
                raise ValueError(f"row_scale {row_scale} does not divide M={M}")
            for nprocs in process_counts:
                for strategy in strategies:
                    if strategy != "none" and not default_registry.supported_on(
                        strategy, spec.supports_locking
                    ):
                        continue
                    table.add(
                        run_read_experiment(
                            spec,
                            M // row_scale,
                            N,
                            nprocs,
                            strategy,
                            overlap_columns=overlap_columns,
                            array_label=label,
                            verify=verify,
                            pattern=pattern,
                        )
                    )
    return table


def run_mixed_experiment(
    machine: MachineSpec | str,
    M: int,
    N: int,
    nprocs: int,
    overlap_columns: int = PAPER_OVERLAP_COLUMNS,
    array_label: Optional[str] = None,
    verify: bool = True,
    pattern: str = "column-wise",
) -> ExperimentRecord:
    """Race a writer group against a reader group on one shared file.

    Even world ranks form a writer group performing a concurrent overlapping
    atomic write; odd world ranks form a reader group collectively reading
    overlapping views of the same array.  Both groups run under byte-range
    locking — the one strategy that serialises two *independent* concurrent
    operations (readers take shared-mode extent locks, writers exclusive
    ones), exactly the situation ROMIO's atomic mode handles.  Verifies both
    MPI write atomicity (provenance) and read atomicity (no reader observed
    a state outside some sequential ordering of the writes).
    """
    if isinstance(machine, str):
        machine = machine_by_name(machine)
    if not machine.supports_locking:
        raise ValueError(
            "the mixed read/write experiment requires byte-range locking "
            f"({machine.name} has none)"
        )
    if nprocs < 2:
        raise ValueError("a mixed experiment needs at least one writer and one reader")
    fs = ParallelFileSystem(machine.make_fs_config())
    filename = f"{machine.file_system.lower()}_{M}x{N}_p{nprocs}_mixed.dat"
    n_writers = (nprocs + 1) // 2
    n_readers = nprocs - n_writers
    # Seed a pre-write baseline directly (provenance -2): racing readers may
    # legitimately observe it, so it must *differ* from every racing
    # writer's data — otherwise a torn read (half old, half new bytes)
    # would be byte-identical to a clean one and the verification vacuous.
    # rank_pattern_bytes streams of distinct ranks (mod 251) never agree
    # byte-for-byte, and the writers use ranks 0..n_writers-1.
    baseline = rank_pattern_bytes(n_writers + 100, M * N)
    fobj = fs.create(filename)
    fobj.store.write(0, baseline, writer=-2)  # pre-state provenance marker
    write_views = views_for_pattern(pattern, M, N, n_writers, overlap_columns)
    read_views = views_for_pattern(pattern, M, N, n_readers, overlap_columns)
    write_regions = [FileRegionSet(i, segs) for i, segs in enumerate(write_views)]
    read_regions = [FileRegionSet(i, segs) for i, segs in enumerate(read_views)]
    write_data = [
        rank_pattern_bytes(i, write_regions[i].total_bytes) for i in range(n_writers)
    ]
    strategy = default_registry.create("locking")

    def rank_main(comm: Communicator):
        is_writer = comm.rank % 2 == 0
        sub = comm.split(color=0 if is_writer else 1)
        if is_writer:
            region = write_regions[sub.rank]
            client = FSClient(fs, client_id=sub.rank, clock=comm.clock)
            handle = client.open(filename, create=False)
            try:
                outcome = strategy.execute_write(
                    sub, handle, region, write_data[sub.rank]
                )
            finally:
                handle.close()
            return ("write", outcome, None)
        region = read_regions[sub.rank]
        # Reader client ids live above the writer id range so lock ownership
        # and provenance never collide.
        client = FSClient(fs, client_id=nprocs + sub.rank, clock=comm.clock)
        handle = client.open(filename, create=False)
        try:
            data, outcome = strategy.execute_read(sub, handle, region)
        finally:
            handle.close()
        return ("read", outcome, data)

    spmd = run_spmd(
        rank_main, nprocs, comm_cost=CommCostModel(latency=30e-6, byte_cost=1e-8)
    )
    reads = [
        (outcome, data) for kind, outcome, data in spmd.returns if kind == "read"
    ]
    atomic_ok = True
    if verify:
        observations = [
            ReadObservation(i, read_regions[i], data)
            for i, (_, data) in enumerate(reads)
        ]
        read_ok = check_read_atomicity(
            observations, write_regions, write_data, baseline=baseline
        ).ok
        write_ok = check_mpi_atomicity(fobj.store, write_regions).ok
        atomic_ok = read_ok and write_ok
    bytes_requested = sum(r.total_bytes for r in write_regions) + sum(
        r.total_bytes for r in read_regions
    )
    bytes_moved = sum(
        o.bytes_written if kind == "write" else o.bytes_read
        for kind, o, _ in spmd.returns
    )
    lm = fobj.lock_manager
    return ExperimentRecord(
        machine=machine.name,
        file_system=machine.file_system,
        array_label=array_label or f"{M}x{N}",
        M=M,
        N=N,
        nprocs=nprocs,
        strategy="locking",
        bytes_requested=bytes_requested,
        bytes_written=bytes_moved,
        makespan_seconds=spmd.makespan,
        atomic_ok=atomic_ok,
        overlap_bytes=overlapped_bytes_total(write_regions),
        phases=1,
        lock_waits=lm.wait_count if lm is not None and hasattr(lm, "wait_count") else 0,
        pattern=pattern,
        mode="mixed",
    )
