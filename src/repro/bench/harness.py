"""Experiment driver for the paper's evaluation (Figure 8).

:func:`run_column_wise_experiment` measures one point: a partitioned
concurrent overlapping write of an ``M x N`` byte array by ``P`` processes on
one machine personality under one atomicity strategy, returning an
:class:`~repro.bench.results.ExperimentRecord` with the virtual-time
bandwidth and an atomicity verdict.  The paper's evaluation is column-wise
(the default ``pattern``); the harness can also sweep the row-wise and
block-block partitionings of Figures 1 and 3.

:func:`run_figure8_grid` sweeps the full grid the paper reports — three
machines × three array sizes × P ∈ {4, 8, 16} × the applicable strategies —
and returns a :class:`~repro.bench.results.ResultTable`.  Strategies come
from the central registry (:mod:`repro.core.registry`): by default every
registered atomicity-providing strategy runs, and strategies that need
byte-range locks are skipped on machines without lock support (Cplant/ENFS),
as in the paper.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

from ..core.executor import AtomicWriteExecutor
from ..core.overlap import overlapped_bytes_total
from ..core.registry import default_registry
from ..patterns.partition import views_for_pattern
from ..fs.filesystem import ParallelFileSystem
from ..mpi.comm import CommCostModel
from ..patterns.workloads import (
    PAPER_ARRAY_SIZES,
    PAPER_OVERLAP_COLUMNS,
    PAPER_PROCESS_COUNTS,
    rank_fill_bytes,
)
from ..verify.atomicity import check_mpi_atomicity
from .machines import ALL_MACHINES, MachineSpec, machine_by_name
from .results import ExperimentRecord, ResultTable

__all__ = [
    "DEFAULT_ROW_SCALE",
    "run_column_wise_experiment",
    "run_figure8_grid",
    "strategies_for_machine",
]

#: Default divisor applied to the paper's 4096-row arrays so the full grid
#: (3 machines x 3 sizes x 3 process counts x the registered strategies)
#: completes in seconds.  Row counts scale the number of per-rank segments;
#: the relative behaviour of the strategies is unchanged (see EXPERIMENTS.md).
DEFAULT_ROW_SCALE = 64


def strategies_for_machine(machine: MachineSpec, strategies: Sequence[str]) -> List[str]:
    """Drop strategies whose registered capabilities the machine lacks.

    Today that means lock-requiring strategies on machines without byte-range
    locking (ENFS), exactly as in the paper; the filter reads the capability
    off the registered class rather than hard-coding strategy names.
    """
    return [
        s for s in strategies
        if default_registry.supported_on(s, machine.supports_locking)
    ]


def run_column_wise_experiment(
    machine: MachineSpec | str,
    M: int,
    N: int,
    nprocs: int,
    strategy: str,
    overlap_columns: int = PAPER_OVERLAP_COLUMNS,
    array_label: Optional[str] = None,
    verify: bool = True,
    pattern: str = "column-wise",
) -> ExperimentRecord:
    """Measure one (machine, size, P, strategy) point of Figure 8.

    ``pattern`` selects the partitioning (``column-wise`` — the paper's
    evaluation and the default — ``row-wise`` or ``block-block``);
    ``overlap_columns`` is the ghost width ``R`` of the chosen pattern.
    """
    if isinstance(machine, str):
        machine = machine_by_name(machine)
    fs = ParallelFileSystem(machine.make_fs_config())
    strat = default_registry.create(strategy)
    executor = AtomicWriteExecutor(
        fs,
        strat,
        filename=f"{machine.file_system.lower()}_{M}x{N}_p{nprocs}_{strategy}.dat",
        comm_cost=CommCostModel(latency=30e-6, byte_cost=1e-8),
    )
    views = views_for_pattern(pattern, M, N, nprocs, overlap_columns)
    result = executor.run(
        nprocs,
        view_factory=lambda rank, _P: views[rank],
        data_factory=rank_fill_bytes,
    )
    regions = result.regions
    atomic_ok = True
    if verify and strat.provides_atomicity:
        report = check_mpi_atomicity(result.file.store, regions)
        atomic_ok = report.ok
    overlap_bytes = overlapped_bytes_total(regions)
    lock_waits = 0
    lm = result.file.lock_manager
    if lm is not None and hasattr(lm, "wait_count"):
        lock_waits = lm.wait_count
    phases = max(o.phases for o in result.outcomes)
    return ExperimentRecord(
        machine=machine.name,
        file_system=machine.file_system,
        array_label=array_label or f"{M}x{N}",
        M=M,
        N=N,
        nprocs=nprocs,
        strategy=strategy,
        bytes_requested=result.total_bytes_requested,
        bytes_written=result.total_bytes_written,
        makespan_seconds=result.makespan,
        atomic_ok=atomic_ok,
        overlap_bytes=overlap_bytes,
        phases=phases,
        lock_waits=lock_waits,
        pattern=pattern,
    )


def run_figure8_grid(
    machines: Optional[Iterable[MachineSpec | str]] = None,
    array_labels: Optional[Sequence[str]] = None,
    process_counts: Sequence[int] = PAPER_PROCESS_COUNTS,
    strategies: Optional[Sequence[str]] = None,
    row_scale: int = DEFAULT_ROW_SCALE,
    overlap_columns: int = PAPER_OVERLAP_COLUMNS,
    verify: bool = True,
    pattern: str = "column-wise",
) -> ResultTable:
    """Sweep the full Figure 8 grid and return every measured point.

    ``strategies`` defaults to every atomicity-providing strategy in the
    registry (including ``two-phase``); ``row_scale`` divides the paper's
    4096-row arrays (see :data:`DEFAULT_ROW_SCALE`); pass 1 to run the
    paper's exact shapes.
    """
    if machines is None:
        machines = ALL_MACHINES
    if array_labels is None:
        array_labels = list(PAPER_ARRAY_SIZES)
    if strategies is None:
        strategies = default_registry.atomic_names()
    table = ResultTable()
    for machine in machines:
        spec = machine_by_name(machine) if isinstance(machine, str) else machine
        for label in array_labels:
            M, N = PAPER_ARRAY_SIZES[label]
            if M % row_scale != 0:
                raise ValueError(f"row_scale {row_scale} does not divide M={M}")
            M_scaled = M // row_scale
            for nprocs in process_counts:
                for strategy in strategies_for_machine(spec, strategies):
                    record = run_column_wise_experiment(
                        spec,
                        M_scaled,
                        N,
                        nprocs,
                        strategy,
                        overlap_columns=overlap_columns,
                        array_label=label,
                        verify=verify,
                        pattern=pattern,
                    )
                    table.add(record)
    return table
