"""Compute/I-O overlap experiments: blocking vs nonblocking collectives.

The point of the request-based API (:mod:`repro.io.requests`) is that the
commit phase of a collective write runs on a detached progress timeline, so
computation issued between ``Write_all_begin`` and ``Write_all_end`` (or
between ``Iwrite_all`` and ``Wait``) overlaps the file I/O in virtual time.
This module measures exactly that with a checkpoint workload: ``steps``
iterations of *write the whole column-wise partitioned array, then compute
for a fixed virtual duration*.

Per step and rank the blocking API costs ``exchange + commit + compute``
while the split-collective API costs ``exchange + max(commit, compute)`` —
so for any positive compute and commit time the split makespan is strictly
lower, and the gap (the *overlap won*) is ``min(commit, compute)`` per
step.  ``Iwrite_all`` additionally detaches the exchange itself.

Every run is verified with the MPI-atomicity checker; results are returned
as :class:`~repro.bench.results.ExperimentRecord` rows with
``mode="overlap-<api>"`` and ``extra["compute_seconds"]`` /
``extra["steps"]`` recording the workload shape.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional

from ..core.regions import FileRegionSet, build_region_sets
from ..datatypes import CHAR, subarray
from ..io import Info, MPIFile
from ..mpi.comm import CommCostModel, Communicator
from ..mpi.runtime import run_spmd
from ..patterns.partition import column_wise_spec, column_wise_views
from ..patterns.workloads import PAPER_OVERLAP_COLUMNS, rank_pattern_bytes
from ..verify.atomicity import check_mpi_atomicity
from .machines import MachineSpec, machine_by_name
from .results import ExperimentRecord
from ..fs.filesystem import ParallelFileSystem

__all__ = ["OVERLAP_APIS", "run_overlap_experiment", "run_overlap_comparison"]

#: The measured API variants, in increasing degree of detachment.
OVERLAP_APIS = ("blocking", "split", "nonblocking")


def _checkpoint_rank(
    comm: Communicator,
    fs: ParallelFileSystem,
    filename: str,
    M: int,
    N: int,
    R: int,
    steps: int,
    compute_seconds: float,
    api: str,
    strategy: str,
):
    """One rank of the checkpoint workload (runs under ``run_spmd``)."""
    spec = column_wise_spec(M, N, comm.size, comm.rank, R)
    filetype = subarray(
        list(spec.sizes), list(spec.subsizes), list(spec.starts), CHAR
    ).commit()
    f = MPIFile.Open(comm, filename, fs, info=Info({"atomicity_strategy": strategy}))
    f.Set_atomicity(True)
    f.Set_view(0, CHAR, filetype)
    payload = rank_pattern_bytes(comm.rank, spec.total_bytes)
    outcome = None
    for _ in range(steps):
        f.Seek(0)
        if api == "blocking":
            outcome = f.Write_all(payload)
            comm.clock.advance(compute_seconds)
        elif api == "split":
            f.Write_all_begin(payload)
            comm.clock.advance(compute_seconds)
            outcome = f.Write_all_end()
        elif api == "nonblocking":
            request = f.Iwrite_all(payload)
            comm.clock.advance(compute_seconds)
            outcome = request.Wait()
        else:
            raise ValueError(f"unknown overlap api {api!r}; known: {OVERLAP_APIS}")
    f.Close()
    return outcome


def run_overlap_experiment(
    machine: MachineSpec | str,
    M: int,
    N: int,
    nprocs: int,
    api: str = "split",
    strategy: str = "two-phase",
    steps: int = 2,
    compute_seconds: float = 0.002,
    overlap_columns: int = PAPER_OVERLAP_COLUMNS,
    verify: bool = True,
) -> ExperimentRecord:
    """Measure one (machine, size, P, api) point of the overlap workload."""
    if isinstance(machine, str):
        machine = machine_by_name(machine)
    fs = ParallelFileSystem(machine.make_fs_config())
    filename = f"overlap_{M}x{N}_p{nprocs}_{strategy}_{api}.dat"
    wall_start = time.perf_counter()
    spmd = run_spmd(
        _checkpoint_rank,
        nprocs,
        fs,
        filename,
        M,
        N,
        overlap_columns,
        steps,
        compute_seconds,
        api,
        strategy,
        comm_cost=CommCostModel(latency=30e-6, byte_cost=1e-8),
    )
    wall_seconds = time.perf_counter() - wall_start
    regions: List[FileRegionSet] = build_region_sets(
        column_wise_views(M, N, nprocs, overlap_columns)
    )
    atomic_ok = True
    if verify:
        atomic_ok = check_mpi_atomicity(fs.lookup(filename).store, regions).ok
    bytes_requested = steps * sum(r.total_bytes for r in regions)
    return ExperimentRecord(
        machine=machine.name,
        file_system=machine.file_system,
        array_label=f"{M}x{N}",
        M=M,
        N=N,
        nprocs=nprocs,
        strategy=strategy,
        bytes_requested=bytes_requested,
        bytes_written=sum(o.bytes_written for o in spmd.returns if o is not None),
        makespan_seconds=spmd.makespan,
        atomic_ok=atomic_ok,
        phases=max((o.phases for o in spmd.returns if o is not None), default=1),
        pattern="column-wise",
        mode=f"overlap-{api}",
        extra={
            "compute_seconds": float(compute_seconds),
            "steps": float(steps),
            "wall_seconds": wall_seconds,
        },
    )


def run_overlap_comparison(
    machine: MachineSpec | str,
    M: int,
    N: int,
    nprocs: int,
    apis: Optional[List[str]] = None,
    strategy: str = "two-phase",
    steps: int = 2,
    compute_seconds: float = 0.002,
    overlap_columns: int = PAPER_OVERLAP_COLUMNS,
    verify: bool = True,
) -> Dict[str, ExperimentRecord]:
    """The same workload under several APIs; returns ``api -> record``."""
    apis = list(apis) if apis is not None else list(OVERLAP_APIS)
    return {
        api: run_overlap_experiment(
            machine,
            M,
            N,
            nprocs,
            api=api,
            strategy=strategy,
            steps=steps,
            compute_seconds=compute_seconds,
            overlap_columns=overlap_columns,
            verify=verify,
        )
        for api in apis
    }
